package component

import "testing"

func TestNames(t *testing.T) {
	cases := map[ID]string{
		Idle: "idle", App: "App", GC: "GC", ClassLoader: "CL",
		BaseCompiler: "Base", OptCompiler: "Opt", JITCompiler: "JIT",
		Scheduler: "Sched",
	}
	for id, want := range cases {
		if got := id.String(); got != want {
			t.Errorf("%d: got %q want %q", id, got, want)
		}
	}
	if ID(200).String() != "?" {
		t.Error("unknown id should print ?")
	}
}

func TestValidity(t *testing.T) {
	for id := ID(0); id < N; id++ {
		if !id.Valid() {
			t.Errorf("%v invalid", id)
		}
	}
	if N.Valid() {
		t.Error("N should be invalid")
	}
}

func TestComponentSets(t *testing.T) {
	if len(JikesComponents()) != 5 {
		t.Error("Jikes decomposition has five stacked components (Fig. 6)")
	}
	if len(KaffeComponents()) != 4 {
		t.Error("Kaffe decomposition has four stacked components (Fig. 9)")
	}
	for _, id := range VMComponents() {
		if id == App || id == Idle {
			t.Error("VM components must exclude App and Idle")
		}
	}
}
