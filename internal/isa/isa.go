// Package isa defines the mini bytecode instruction set executed by the
// simulated virtual machine.
//
// The ISA is a deliberately small, Java-bytecode-flavored stack machine: it
// has integer arithmetic, local variable slots, an operand stack, object and
// array allocation, field access, static fields, and method invocation. It
// is rich enough to express the synthetic benchmark programs in
// internal/workloads and to exercise every VM service the paper measures
// (class loading on first reference, baseline/optimizing compilation on
// invocation, and garbage collection on allocation), while staying small
// enough that the interpreter and compiler cost models remain transparent.
package isa

import "fmt"

// Opcode identifies an instruction.
type Opcode uint8

// Instruction opcodes. The operand columns describe how Instr.A and Instr.B
// are interpreted for each opcode.
const (
	NOP Opcode = iota

	// Constants and locals.
	ICONST // push A
	ILOAD  // push locals[A]
	ISTORE // locals[A] = pop
	ALOAD  // push reference locals[A]
	ASTORE // locals[A] = pop reference

	// Arithmetic and logic (pop two, push one unless noted).
	IADD
	ISUB
	IMUL
	IDIV // pops divisor first; division by zero raises a VM error
	IREM
	INEG // pop one, push one
	ISHL
	ISHR
	IAND
	IOR
	IXOR

	// Stack manipulation.
	DUP
	POP
	SWAP

	// Control flow. A is the absolute target PC within the method.
	GOTO
	IFEQ     // pop; branch if == 0
	IFNE     // pop; branch if != 0
	IFLT     // pop; branch if < 0
	IFGE     // pop; branch if >= 0
	IFGT     // pop; branch if > 0
	IFLE     // pop; branch if <= 0
	IFICMPLT // pop b, a; branch if a < b
	IFICMPGE // pop b, a; branch if a >= b
	IFNULL   // pop ref; branch if null

	// Objects and arrays. A is a class index or element count source.
	NEW      // A = class index; push new object reference
	NEWARRAY // pop length; A = element size in bytes; push array reference
	GETFIELD // pop ref; A = field index; push value
	PUTFIELD // pop value, ref; A = field index
	GETREF   // pop ref; A = reference-field index; push reference
	PUTREF   // pop ref value, ref; A = reference-field index (barriered)
	IALOAD   // pop index, arrayref; push element
	IASTORE  // pop value, index, arrayref
	ARRAYLEN // pop arrayref; push length

	// Statics. A = class index, B = static slot.
	GETSTATIC
	PUTSTATIC
	GETSTATICREF
	PUTSTATICREF // barriered reference store

	// Calls. A = method index (program-global). Arguments are popped from
	// the operand stack into the callee's first locals.
	INVOKE
	RETURN  // return void
	IRETURN // return popped int
	ARETURN // return popped reference

	// HALT stops the program (valid only in the entry method).
	HALT

	numOpcodes
)

var opNames = [numOpcodes]string{
	NOP: "nop", ICONST: "iconst", ILOAD: "iload", ISTORE: "istore",
	ALOAD: "aload", ASTORE: "astore",
	IADD: "iadd", ISUB: "isub", IMUL: "imul", IDIV: "idiv", IREM: "irem",
	INEG: "ineg", ISHL: "ishl", ISHR: "ishr", IAND: "iand", IOR: "ior", IXOR: "ixor",
	DUP: "dup", POP: "pop", SWAP: "swap",
	GOTO: "goto", IFEQ: "ifeq", IFNE: "ifne", IFLT: "iflt", IFGE: "ifge",
	IFGT: "ifgt", IFLE: "ifle", IFICMPLT: "if_icmplt", IFICMPGE: "if_icmpge",
	IFNULL: "ifnull",
	NEW:    "new", NEWARRAY: "newarray", GETFIELD: "getfield", PUTFIELD: "putfield",
	GETREF: "getref", PUTREF: "putref",
	IALOAD: "iaload", IASTORE: "iastore", ARRAYLEN: "arraylength",
	GETSTATIC: "getstatic", PUTSTATIC: "putstatic",
	GETSTATICREF: "getstaticref", PUTSTATICREF: "putstaticref",
	INVOKE: "invoke", RETURN: "return", IRETURN: "ireturn", ARETURN: "areturn",
	HALT: "halt",
}

// String returns the mnemonic for op.
func (op Opcode) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Valid reports whether op is a defined opcode.
func (op Opcode) Valid() bool { return op < numOpcodes }

// IsBranch reports whether op may transfer control to Instr.A.
func (op Opcode) IsBranch() bool {
	switch op {
	case GOTO, IFEQ, IFNE, IFLT, IFGE, IFGT, IFLE, IFICMPLT, IFICMPGE, IFNULL:
		return true
	}
	return false
}

// IsReturn reports whether op exits the current method.
func (op Opcode) IsReturn() bool {
	return op == RETURN || op == IRETURN || op == ARETURN
}

// TouchesMemory reports whether op performs a data memory access beyond the
// operand stack (field, static, or array traffic). The timing model charges
// these against the data cache.
func (op Opcode) TouchesMemory() bool {
	switch op {
	case GETFIELD, PUTFIELD, GETREF, PUTREF, IALOAD, IASTORE,
		GETSTATIC, PUTSTATIC, GETSTATICREF, PUTSTATICREF, ARRAYLEN:
		return true
	}
	return false
}

// Allocates reports whether op allocates heap storage.
func (op Opcode) Allocates() bool { return op == NEW || op == NEWARRAY }

// Instr is one fixed-format instruction. The meaning of A and B depends on
// the opcode; see the opcode list.
type Instr struct {
	Op   Opcode
	A, B int32
}

// String renders the instruction in assembler-like form.
func (in Instr) String() string {
	switch in.Op {
	case NOP, IADD, ISUB, IMUL, IDIV, IREM, INEG, ISHL, ISHR, IAND, IOR, IXOR,
		DUP, POP, SWAP, RETURN, IRETURN, ARETURN, HALT, ARRAYLEN:
		return in.Op.String()
	case GETSTATIC, PUTSTATIC, GETSTATICREF, PUTSTATICREF:
		return fmt.Sprintf("%s %d.%d", in.Op, in.A, in.B)
	default:
		return fmt.Sprintf("%s %d", in.Op, in.A)
	}
}

// Disassemble renders code with PC labels, one instruction per line.
func Disassemble(code []Instr) string {
	out := ""
	for pc, in := range code {
		out += fmt.Sprintf("%4d: %s\n", pc, in)
	}
	return out
}

// Validate performs a lightweight structural verification of a method body:
// every branch target must be in range, the final instruction must be a
// return, halt, or goto, and every opcode must be defined. It returns the
// first problem found.
func Validate(code []Instr) error {
	if len(code) == 0 {
		return fmt.Errorf("isa: empty code")
	}
	for pc, in := range code {
		if !in.Op.Valid() {
			return fmt.Errorf("isa: pc %d: invalid opcode %d", pc, uint8(in.Op))
		}
		if in.Op.IsBranch() {
			if in.A < 0 || int(in.A) >= len(code) {
				return fmt.Errorf("isa: pc %d: branch target %d out of range [0,%d)", pc, in.A, len(code))
			}
		}
	}
	last := code[len(code)-1].Op
	if !last.IsReturn() && last != GOTO && last != HALT {
		return fmt.Errorf("isa: method falls off end (last opcode %s)", last)
	}
	return nil
}
