package isa

import (
	"strings"
	"testing"
)

func TestOpcodeStrings(t *testing.T) {
	cases := map[Opcode]string{
		NOP:    "nop",
		ICONST: "iconst",
		INVOKE: "invoke",
		PUTREF: "putref",
		HALT:   "halt",
	}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("%d: got %q want %q", uint8(op), got, want)
		}
	}
	if got := Opcode(200).String(); !strings.Contains(got, "200") {
		t.Errorf("unknown opcode string %q", got)
	}
}

func TestOpcodeClassification(t *testing.T) {
	if !GOTO.IsBranch() || !IFEQ.IsBranch() || IADD.IsBranch() {
		t.Fatal("branch classification wrong")
	}
	if !RETURN.IsReturn() || !IRETURN.IsReturn() || GOTO.IsReturn() {
		t.Fatal("return classification wrong")
	}
	if !GETFIELD.TouchesMemory() || !IASTORE.TouchesMemory() || IADD.TouchesMemory() {
		t.Fatal("memory classification wrong")
	}
	if !NEW.Allocates() || !NEWARRAY.Allocates() || GETFIELD.Allocates() {
		t.Fatal("allocation classification wrong")
	}
	if !NOP.Valid() || Opcode(250).Valid() {
		t.Fatal("validity classification wrong")
	}
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	code := []Instr{
		{Op: ICONST, A: 5},
		{Op: ICONST, A: 7},
		{Op: IADD},
		{Op: IRETURN},
	}
	if err := Validate(code); err != nil {
		t.Fatalf("valid code rejected: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		code []Instr
	}{
		{"empty", nil},
		{"falls off end", []Instr{{Op: NOP}}},
		{"bad branch target", []Instr{{Op: GOTO, A: 9}, {Op: RETURN}}},
		{"negative branch", []Instr{{Op: IFEQ, A: -1}, {Op: RETURN}}},
		{"invalid opcode", []Instr{{Op: Opcode(240)}, {Op: RETURN}}},
	}
	for _, c := range cases {
		if err := Validate(c.code); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestValidateAllowsGotoTail(t *testing.T) {
	code := []Instr{
		{Op: NOP},
		{Op: GOTO, A: 0},
	}
	if err := Validate(code); err != nil {
		t.Fatalf("loop with goto tail rejected: %v", err)
	}
}

func TestDisassemble(t *testing.T) {
	out := Disassemble([]Instr{{Op: ICONST, A: 3}, {Op: RETURN}})
	if !strings.Contains(out, "0: iconst 3") || !strings.Contains(out, "1: return") {
		t.Fatalf("unexpected disassembly:\n%s", out)
	}
}

func TestInstrString(t *testing.T) {
	if got := (Instr{Op: GETSTATIC, A: 2, B: 1}).String(); got != "getstatic 2.1" {
		t.Errorf("getstatic format: %q", got)
	}
	if got := (Instr{Op: IADD}).String(); got != "iadd" {
		t.Errorf("iadd format: %q", got)
	}
	if got := (Instr{Op: ILOAD, A: 3}).String(); got != "iload 3" {
		t.Errorf("iload format: %q", got)
	}
}
