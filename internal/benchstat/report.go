package benchstat

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"jvmpower/internal/stats"
)

// Environment is the machine/build identity stamped into every report.
// Two reports are only comparable as a claim when these match; benchgate
// diff refuses to gate across differing environments and labels the
// comparison instead.
type Environment struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	CPU        string `json:"cpu,omitempty"` // model string, if discoverable
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	GoVersion  string `json:"go_version"`
	GitSHA     string `json:"git_sha,omitempty"`
}

// Same reports whether two environments are comparable for gating:
// identical platform, CPU model, and parallelism. Git SHA is excluded —
// differing SHAs are exactly what a regression gate compares.
func (e Environment) Same(o Environment) bool {
	return e.GOOS == o.GOOS && e.GOARCH == o.GOARCH && e.CPU == o.CPU &&
		e.GOMAXPROCS == o.GOMAXPROCS && e.NumCPU == o.NumCPU
}

// CaptureEnvironment fills an Environment from the running process,
// preferring identity parsed from the benchmark output itself (goos/
// goarch/cpu headers, -N name suffix) since the benchmarks may have run
// in a different process. gitSHA may be empty.
func CaptureEnvironment(p *Parsed, gitSHA string) Environment {
	env := Environment{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		GitSHA:     gitSHA,
	}
	if p != nil {
		if p.GOOS != "" {
			env.GOOS = p.GOOS
		}
		if p.GOARCH != "" {
			env.GOARCH = p.GOARCH
		}
		if p.CPU != "" {
			env.CPU = p.CPU
		}
		if p.Procs != 0 {
			env.GOMAXPROCS = p.Procs
		}
	}
	if env.CPU == "" {
		env.CPU = cpuModelFromProc()
	}
	return env
}

// cpuModelFromProc reads the CPU model from /proc/cpuinfo on Linux; empty
// elsewhere or on failure (the field is omitempty, not load-bearing).
func cpuModelFromProc() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "model name") {
			if _, val, ok := strings.Cut(line, ":"); ok {
				return strings.TrimSpace(val)
			}
		}
	}
	return ""
}

// Benchmark is the per-benchmark evidence in a report: the raw samples,
// robust summaries, and — when a per-iteration series was captured — the
// warmup split and a bootstrap CI on the steady-state median.
type Benchmark struct {
	Name        string    `json:"-"`
	NsPerOp     []float64 `json:"ns_per_op"` // per-repetition, from go test
	MedianNs    float64   `json:"median_ns_per_op"`
	MinNs       float64   `json:"min_ns_per_op"`
	MaxNs       float64   `json:"max_ns_per_op"`
	StdDevNs    float64   `json:"stddev_ns_per_op"` // sample stddev (÷n−1) of the summarized samples
	BytesPerOp  int64     `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64     `json:"allocs_per_op,omitempty"`

	// Per-iteration evidence, present only when the harness ran with
	// -iters. Steady is Iters[Warmup:]; MedianNs/MinNs/MaxNs/StdDevNs and
	// SteadyCI then summarize the steady segment, which supersedes the
	// coarse per-repetition ns/op above.
	Iters    []float64 `json:"iters_ns,omitempty"`
	Warmup   int       `json:"warmup_iters,omitempty"`
	Steady   []float64 `json:"steady_ns,omitempty"`
	SteadyCI *CI       `json:"steady_median_ci,omitempty"`
}

// Samples returns the best available sample set for inference: the
// steady-state iteration series when present, else the per-repetition
// ns/op values.
func (b *Benchmark) Samples() []float64 {
	if len(b.Steady) > 0 {
		return b.Steady
	}
	return b.NsPerOp
}

// Comparison is a significance-tested two-sample comparison between a
// variant and a baseline benchmark from the same run. It replaces the old
// binary below_noise flag: EffectPct is only a claim when Significant.
type Comparison struct {
	Name        string  `json:"name"`       // e.g. "memo_vs_bare"
	Variant     string  `json:"variant"`    // benchmark name
	Baseline    string  `json:"baseline"`   // benchmark name
	EffectPct   float64 `json:"effect_pct"` // (median(variant)/median(baseline) − 1)·100
	EffectCI    CI      `json:"effect_ci"`  // bootstrap CI on EffectPct
	P           float64 `json:"p_value"`    // Mann–Whitney U, two-sided
	Alpha       float64 `json:"alpha"`
	Significant bool    `json:"significant"` // p < alpha and the effect CI excludes 0
	Note        string  `json:"note,omitempty"`
}

// Compare builds a significance-tested comparison of variant against
// baseline. alpha <= 0 defaults to 0.05. Significance requires agreement
// between the rank test and the bootstrap interval: p below alpha AND an
// effect CI that excludes zero. Either alone can misfire at small n.
func Compare(name string, variant, baseline *Benchmark, alpha float64, seed int64) Comparison {
	if alpha <= 0 {
		alpha = 0.05
	}
	a, b := variant.Samples(), baseline.Samples()
	effect := 0.0
	if mb := stats.Median(b); mb != 0 {
		effect = (stats.Median(a)/mb - 1) * 100
	}
	ci := BootstrapEffectCI(a, b, 0.95, DefaultResamples, seed)
	p := MannWhitneyP(a, b)
	c := Comparison{
		Name:        name,
		Variant:     variant.Name,
		Baseline:    baseline.Name,
		EffectPct:   effect,
		EffectCI:    ci,
		P:           p,
		Alpha:       alpha,
		Significant: p < alpha && (ci.Lo > 0 || ci.Hi < 0),
	}
	if len(a) < 3 || len(b) < 3 {
		c.Significant = false
		c.Note = "insufficient samples for significance (need >= 3 per side)"
	}
	return c
}

// LegacyBaseline is a frozen scalar from an earlier evidence file,
// possibly recorded on a different machine. It is carried as labeled
// context, never as a claim: there is no sample set to test against.
type LegacyBaseline struct {
	Name         string  `json:"name"`
	NsPerOp      float64 `json:"ns_per_op"`
	Source       string  `json:"source"` // e.g. "BENCH_4.json median"
	CrossMachine bool    `json:"cross_machine"`
	RatioVsNow   float64 `json:"ratio_vs_now,omitempty"` // baseline / current median
	Note         string  `json:"note"`
}

// Report is the BENCH_*.json evidence schema.
type Report struct {
	Description string                `json:"description"`
	Command     string                `json:"command"`
	Environment Environment           `json:"environment"`
	Benchmarks  map[string]*Benchmark `json:"benchmarks"`
	Comparisons []Comparison          `json:"comparisons,omitempty"`
	Legacy      []LegacyBaseline      `json:"legacy_baselines,omitempty"`
}

// Build summarizes a parsed run (plus optional per-iteration series) into
// report benchmarks. Iteration series, when present, are segmented into
// warmup and steady state, and the steady segment gets a bootstrap CI on
// its median.
func Build(p *Parsed, iters map[string][]float64, seed int64) (map[string]*Benchmark, error) {
	out := make(map[string]*Benchmark, len(p.Order))
	for _, name := range p.Order {
		s := p.Benchmarks[name]
		b := &Benchmark{Name: name, NsPerOp: s.NsPerOp}
		if n := len(s.BytesPerOp); n > 0 {
			b.BytesPerOp = s.BytesPerOp[n-1]
		}
		if n := len(s.AllocsPerOp); n > 0 {
			b.AllocsPerOp = s.AllocsPerOp[n-1]
		}
		summary := s.NsPerOp
		if series, ok := iters[name]; ok {
			if len(series) == 0 {
				return nil, fmt.Errorf("benchstat: empty iteration series for %s", name)
			}
			b.Iters = series
			b.Warmup = WarmupSplit(series)
			b.Steady = series[b.Warmup:]
			ci := BootstrapMedianCI(b.Steady, 0.95, DefaultResamples, seed)
			b.SteadyCI = &ci
			summary = b.Steady
		}
		b.MedianNs = stats.Median(summary)
		var run stats.Running
		for _, x := range summary {
			run.Add(x)
		}
		b.MinNs, b.MaxNs = run.Min(), run.Max()
		b.StdDevNs = run.SampleStdDev()
		out[name] = b
	}
	for name := range iters {
		if _, ok := out[name]; !ok {
			return nil, fmt.Errorf("benchstat: iteration series for %s has no matching benchmark result", name)
		}
	}
	return out, nil
}

// WriteJSON writes the report with stable indentation.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadReport loads a report written by WriteJSON and restores the
// benchmark Name fields from the map keys.
func ReadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("benchstat: %s: %w", path, err)
	}
	if len(r.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchstat: %s: no benchmarks (not a benchgate report?)", path)
	}
	for name, b := range r.Benchmarks {
		b.Name = name
	}
	return &r, nil
}
