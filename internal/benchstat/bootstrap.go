package benchstat

import (
	"math/rand"
	"sort"

	"jvmpower/internal/stats"
)

// CI is a bootstrap percentile confidence interval on a statistic.
type CI struct {
	Lo         float64 `json:"lo"`
	Hi         float64 `json:"hi"`
	Confidence float64 `json:"confidence"` // e.g. 0.95
	Resamples  int     `json:"resamples"`
}

// DefaultResamples is the bootstrap resample count used when a caller
// passes 0. 2000 keeps the percentile estimates stable to well under the
// interval widths seen at benchmark sample sizes.
const DefaultResamples = 2000

// BootstrapMedianCI computes a percentile-bootstrap confidence interval
// on the median of xs. The resampling RNG is seeded deterministically so
// the same samples always yield the same interval — evidence files must
// be reproducible from their inputs.
func BootstrapMedianCI(xs []float64, confidence float64, resamples int, seed int64) CI {
	return bootstrapCI(confidence, resamples, seed, func(rng *rand.Rand, buf []float64) float64 {
		return stats.Median(resample(rng, xs, buf))
	}, len(xs))
}

// BootstrapEffectCI computes a percentile-bootstrap CI on the relative
// effect (median(a)/median(b) − 1)·100 — the percent change of a against
// baseline b. Both sides are resampled independently.
func BootstrapEffectCI(a, b []float64, confidence float64, resamples int, seed int64) CI {
	bufB := make([]float64, len(b))
	rngB := rand.New(rand.NewSource(seed ^ 0x5851f42d4c957f2d))
	return bootstrapCI(confidence, resamples, seed, func(rng *rand.Rand, bufA []float64) float64 {
		ma := stats.Median(resample(rng, a, bufA))
		mb := stats.Median(resample(rngB, b, bufB))
		if mb == 0 {
			return 0
		}
		return (ma/mb - 1) * 100
	}, len(a))
}

func bootstrapCI(confidence float64, resamples int, seed int64, stat func(*rand.Rand, []float64) float64, n int) CI {
	if confidence <= 0 || confidence >= 1 {
		confidence = 0.95
	}
	if resamples <= 0 {
		resamples = DefaultResamples
	}
	rng := rand.New(rand.NewSource(seed))
	buf := make([]float64, n)
	estimates := make([]float64, resamples)
	for i := range estimates {
		estimates[i] = stat(rng, buf)
	}
	sort.Float64s(estimates)
	alpha := (1 - confidence) / 2
	return CI{
		Lo:         quantileSorted(estimates, alpha),
		Hi:         quantileSorted(estimates, 1-alpha),
		Confidence: confidence,
		Resamples:  resamples,
	}
}

// resample fills buf with len(xs) draws from xs with replacement.
func resample(rng *rand.Rand, xs, buf []float64) []float64 {
	buf = buf[:len(xs)]
	for i := range buf {
		buf[i] = xs[rng.Intn(len(xs))]
	}
	return buf
}

// quantileSorted reads the q-quantile (0..1) off an already-sorted slice
// with linear interpolation.
func quantileSorted(s []float64, q float64) float64 {
	if len(s) == 0 {
		return 0
	}
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	rank := q * float64(len(s)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}
