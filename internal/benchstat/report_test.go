package benchstat

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBuildWithIters(t *testing.T) {
	p, err := Parse(strings.NewReader("BenchmarkFig7EDP-8 12 1100000000 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	// Two slow warmup iterations then a tight steady state around 1e9.
	series := map[string][]float64{
		"BenchmarkFig7EDP": {2.0e9, 1.6e9, 1.00e9, 1.01e9, 0.99e9, 1.00e9, 1.005e9, 0.995e9, 1.00e9, 1.002e9, 0.998e9, 1.001e9},
	}
	benches, err := Build(p, series, 1)
	if err != nil {
		t.Fatal(err)
	}
	b := benches["BenchmarkFig7EDP"]
	if b.Warmup != 2 {
		t.Fatalf("warmup = %d, want 2", b.Warmup)
	}
	if len(b.Steady) != 10 {
		t.Fatalf("steady = %d samples", len(b.Steady))
	}
	if b.SteadyCI == nil {
		t.Fatal("no steady-state CI")
	}
	if !(b.SteadyCI.Lo <= b.MedianNs && b.MedianNs <= b.SteadyCI.Hi) {
		t.Fatalf("CI [%v, %v] excludes median %v", b.SteadyCI.Lo, b.SteadyCI.Hi, b.MedianNs)
	}
	// The summary must come from the steady segment, not the warmup: the
	// warmup samples would drag the median toward 2e9.
	if b.MedianNs > 1.1e9 {
		t.Fatalf("median %v includes warmup", b.MedianNs)
	}
	if b.MaxNs >= 1.6e9 {
		t.Fatalf("max %v includes warmup", b.MaxNs)
	}
}

func TestBuildWithoutIters(t *testing.T) {
	p, err := Parse(strings.NewReader(
		"BenchmarkA-8 1 100 ns/op 50 B/op 3 allocs/op\nBenchmarkA-8 1 110 ns/op 50 B/op 3 allocs/op\nBenchmarkA-8 1 90 ns/op 50 B/op 3 allocs/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	benches, err := Build(p, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	b := benches["BenchmarkA"]
	if b.MedianNs != 100 || b.MinNs != 90 || b.MaxNs != 110 {
		t.Fatalf("summary = %+v", b)
	}
	if b.BytesPerOp != 50 || b.AllocsPerOp != 3 {
		t.Fatalf("benchmem = %+v", b)
	}
	if b.SteadyCI != nil || b.Warmup != 0 {
		t.Fatalf("no-iters build grew iteration fields: %+v", b)
	}
}

func TestBuildRejectsOrphanSeries(t *testing.T) {
	p, err := Parse(strings.NewReader("BenchmarkA-8 1 100 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(p, map[string][]float64{"BenchmarkGhost": {1, 2, 3}}, 1); err == nil {
		t.Fatal("orphan iteration series must error")
	}
}

func TestReportRoundtrip(t *testing.T) {
	p, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	benches, err := Build(p, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := &Report{
		Description: "roundtrip test",
		Command:     "go test -bench ...",
		Environment: CaptureEnvironment(p, "abc1234"),
		Benchmarks:  benches,
		Comparisons: []Comparison{
			Compare("memo_vs_bare", benches["BenchmarkFig7EDPMemo"], benches["BenchmarkFig7EDP"], 0.05, 1),
		},
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "report.json")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Environment.GitSHA != "abc1234" || got.Environment.GOOS != "linux" {
		t.Fatalf("environment lost: %+v", got.Environment)
	}
	if got.Benchmarks["BenchmarkFig7EDP"].Name != "BenchmarkFig7EDP" {
		t.Fatal("ReadReport did not restore names")
	}
	if len(got.Comparisons) != 1 || got.Comparisons[0].Name != "memo_vs_bare" {
		t.Fatalf("comparisons lost: %+v", got.Comparisons)
	}
	// A diff of a report against itself must never gate.
	d := Diff(got, got, DiffOptions{})
	if d.Failed() {
		t.Fatal("self-diff fired the gate")
	}
}

func TestCompareInsufficientSamples(t *testing.T) {
	a := &Benchmark{Name: "A", NsPerOp: []float64{100, 101}}
	b := &Benchmark{Name: "B", NsPerOp: []float64{200, 201}}
	c := Compare("ab", a, b, 0.05, 1)
	if c.Significant {
		t.Fatal("2-sample comparison claimed significance")
	}
	if c.Note == "" {
		t.Fatal("insufficient-sample comparison carries no note")
	}
}

func TestCompareSignificant(t *testing.T) {
	a := &Benchmark{Name: "A", NsPerOp: []float64{130, 131, 129, 132, 130, 128}}
	b := &Benchmark{Name: "B", NsPerOp: []float64{100, 101, 99, 100, 102, 98}}
	c := Compare("ab", a, b, 0.05, 1)
	if !c.Significant {
		t.Fatalf("30%% separation not significant: %+v", c)
	}
	if c.EffectPct < 25 || c.EffectPct > 35 {
		t.Fatalf("effect = %v, want ~30", c.EffectPct)
	}
	// Environment capture from parsed output falls back to the process.
	env := CaptureEnvironment(nil, "")
	if env.GOOS == "" || env.GoVersion == "" {
		t.Fatalf("environment incomplete: %+v", env)
	}
}
