package benchstat

import (
	"math"
	"sort"
)

// MannWhitneyP returns the two-sided p-value of the Mann–Whitney U test
// for samples a and b: the probability, under the null hypothesis that
// both come from the same distribution, of a rank separation at least
// this extreme. It uses the normal approximation with tie correction and
// a 0.5 continuity correction; at benchmark sample sizes (≥5 per side)
// that is accurate enough for gating, and it is distribution-free — the
// right property for timing data, which is skewed and multi-modal.
//
// Degenerate inputs (an empty side, or all samples tied) return 1: no
// evidence of a difference.
func MannWhitneyP(a, b []float64) float64 {
	n1, n2 := float64(len(a)), float64(len(b))
	if n1 == 0 || n2 == 0 {
		return 1
	}
	type obs struct {
		v     float64
		fromA bool
	}
	all := make([]obs, 0, len(a)+len(b))
	for _, v := range a {
		all = append(all, obs{v, true})
	}
	for _, v := range b {
		all = append(all, obs{v, false})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	// Midranks, accumulating the tie correction Σ(t³−t).
	n := n1 + n2
	var rankSumA, tieCorr float64
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		t := float64(j - i)
		rank := (float64(i+1) + float64(j)) / 2 // midrank of the tied block
		for k := i; k < j; k++ {
			if all[k].fromA {
				rankSumA += rank
			}
		}
		tieCorr += t*t*t - t
		i = j
	}

	u := rankSumA - n1*(n1+1)/2 // U statistic for a
	mu := n1 * n2 / 2
	sigma2 := n1 * n2 / 12 * ((n + 1) - tieCorr/(n*(n-1)))
	if sigma2 <= 0 {
		return 1 // every sample tied
	}
	z := u - mu
	// Continuity correction toward the mean.
	switch {
	case z > 0.5:
		z -= 0.5
	case z < -0.5:
		z += 0.5
	default:
		z = 0
	}
	z /= math.Sqrt(sigma2)
	p := 2 * normalSF(math.Abs(z))
	if p > 1 {
		p = 1
	}
	return p
}

// normalSF is the standard normal survival function 1 − Φ(x).
func normalSF(x float64) float64 {
	return 0.5 * math.Erfc(x/math.Sqrt2)
}
