package benchstat

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

// syntheticReport builds a report whose one benchmark has steady-state
// samples drawn around center with the given relative noise.
func syntheticReport(t *testing.T, name string, center, relNoise float64, n int, seed int64, env Environment) *Report {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = center * (1 + relNoise*rng.NormFloat64())
	}
	bench := &Benchmark{Name: name, NsPerOp: samples, Steady: samples}
	return &Report{
		Description: "synthetic",
		Environment: env,
		Benchmarks:  map[string]*Benchmark{name: bench},
	}
}

var testEnv = Environment{GOOS: "linux", GOARCH: "amd64", CPU: "test-cpu", GOMAXPROCS: 8, NumCPU: 8, GoVersion: "go1.22"}

// Same SHA, same distribution: the gate must hold (exit 0). This is the
// unit-level mirror of the CI job that runs BenchmarkFig7EDP twice on one
// commit and diffs the two reports.
func TestDiffGateSelfConsistent(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		old := syntheticReport(t, "BenchmarkFig7EDP", 1.7e9, 0.01, 10, seed, testEnv)
		new_ := syntheticReport(t, "BenchmarkFig7EDP", 1.7e9, 0.01, 10, seed+100, testEnv)
		d := Diff(old, new_, DiffOptions{BudgetPct: 2})
		if d.Failed() {
			t.Fatalf("seed %d: same-distribution diff fired the gate: %+v", seed, d.Rows)
		}
	}
}

// Injected slowdown: a build made 30% slower must fire the gate. This is
// the proof the regression check can actually fail — a gate that cannot
// fire is decoration.
func TestDiffGateFiresOnInjectedSlowdown(t *testing.T) {
	old := syntheticReport(t, "BenchmarkFig7EDP", 1.7e9, 0.01, 10, 1, testEnv)
	slowed := syntheticReport(t, "BenchmarkFig7EDP", 1.7e9*1.30, 0.01, 10, 2, testEnv)
	d := Diff(old, slowed, DiffOptions{BudgetPct: 2})
	if !d.Failed() {
		t.Fatalf("30%% injected slowdown did not fire the gate: %+v", d.Rows)
	}
	row := d.Rows[0]
	if !row.Significant || !row.Regression {
		t.Fatalf("row not flagged: %+v", row)
	}
	if row.EffectPct < 20 || row.EffectPct > 40 {
		t.Fatalf("effect %v%%, want ~30%%", row.EffectPct)
	}
	if row.P >= 0.05 {
		t.Fatalf("p = %v, want < 0.05", row.P)
	}
	// And the improvement direction must NOT gate.
	d = Diff(slowed, old, DiffOptions{BudgetPct: 2})
	if d.Failed() {
		t.Fatal("a speedup fired the regression gate")
	}
}

// A significant but tiny regression stays within budget: real, reported,
// not actionable.
func TestDiffGateBudget(t *testing.T) {
	old := syntheticReport(t, "BenchmarkFig7EDP", 1.0e9, 0.001, 12, 1, testEnv)
	slight := syntheticReport(t, "BenchmarkFig7EDP", 1.01e9, 0.001, 12, 2, testEnv)
	d := Diff(old, slight, DiffOptions{BudgetPct: 5})
	if d.Failed() {
		t.Fatalf("1%% slowdown fired a 5%% budget gate: %+v", d.Rows)
	}
	if !d.Rows[0].Significant {
		t.Fatalf("1%% shift on 0.1%% noise should be significant: %+v", d.Rows[0])
	}
}

// Cross-environment diffs are labeled, never gated: a new machine is not
// a code regression.
func TestDiffCrossEnvironmentNeverGates(t *testing.T) {
	otherEnv := testEnv
	otherEnv.CPU = "different-cpu"
	old := syntheticReport(t, "BenchmarkFig7EDP", 1.0e9, 0.01, 10, 1, testEnv)
	slowed := syntheticReport(t, "BenchmarkFig7EDP", 2.0e9, 0.01, 10, 2, otherEnv)
	d := Diff(old, slowed, DiffOptions{BudgetPct: 2})
	if !d.CrossEnvironment {
		t.Fatal("environment mismatch not detected")
	}
	if d.Failed() {
		t.Fatal("cross-environment diff fired the gate")
	}
	var buf bytes.Buffer
	d.WriteText(&buf)
	if !strings.Contains(buf.String(), "environments differ") {
		t.Fatalf("cross-environment note missing from output:\n%s", buf.String())
	}
}

// Too few samples on either side: no significance machinery, no gating —
// and an explicit note, not silence.
func TestDiffInsufficientSamples(t *testing.T) {
	old := syntheticReport(t, "BenchmarkFig7EDP", 1.0e9, 0.01, 2, 1, testEnv)
	slowed := syntheticReport(t, "BenchmarkFig7EDP", 2.0e9, 0.01, 2, 2, testEnv)
	d := Diff(old, slowed, DiffOptions{BudgetPct: 2})
	if d.Failed() {
		t.Fatal("2-sample diff gated")
	}
	if d.Rows[0].Note == "" {
		t.Fatal("insufficient-sample row carries no note")
	}
}

func TestDiffIgnoresUnmatchedBenchmarks(t *testing.T) {
	old := syntheticReport(t, "BenchmarkOnlyOld", 1.0e9, 0.01, 10, 1, testEnv)
	new_ := syntheticReport(t, "BenchmarkOnlyNew", 1.0e9, 0.01, 10, 2, testEnv)
	d := Diff(old, new_, DiffOptions{})
	if len(d.Rows) != 0 || d.Failed() {
		t.Fatalf("unmatched benchmarks produced rows: %+v", d.Rows)
	}
}
