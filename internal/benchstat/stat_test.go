package benchstat

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestParseIters(t *testing.T) {
	in := `{"benchmark":"BenchmarkFig7EDP","iter":0,"ns":1700000000}
{"benchmark":"BenchmarkFig7EDP","iter":1,"ns":1650000000}
{"benchmark":"BenchmarkFig7EDPMemo","iter":0,"ns":1600000000}
`
	series, err := ParseIters(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(series["BenchmarkFig7EDP"]) != 2 || len(series["BenchmarkFig7EDPMemo"]) != 1 {
		t.Fatalf("series = %v", series)
	}
	if series["BenchmarkFig7EDP"][1] != 1.65e9 {
		t.Fatalf("order not preserved: %v", series["BenchmarkFig7EDP"])
	}
}

func TestParseItersRejectsGarbage(t *testing.T) {
	for _, in := range []string{
		`{"benchmark":"X","iter":0,"ns":`,        // torn JSON
		`{"iter":0,"ns":100}`,                    // missing name
		`{"benchmark":"X","iter":0,"ns":0}`,      // non-positive
		`{"benchmark":"X","iter":0,"ns":-5}`,     // negative
		`{"benchmark":"X","iter":0,"ns":"fast"}`, // wrong type
	} {
		if _, err := ParseIters(strings.NewReader(in + "\n")); err == nil {
			t.Errorf("accepted garbage: %s", in)
		}
	}
}

func TestWarmupSplitDetectsWarmup(t *testing.T) {
	// Three slow warmup iterations, then a tight steady state.
	xs := []float64{3000, 2500, 2200, 1000, 1010, 990, 1005, 995, 1000, 1002, 998, 1001}
	w := WarmupSplit(xs)
	if w != 3 {
		t.Fatalf("warmup = %d, want 3 (series %v)", w, xs)
	}
}

func TestWarmupSplitMultiPhase(t *testing.T) {
	// A big first phase and a smaller shoulder: iterative peeling should
	// remove both.
	xs := []float64{5000, 5100, 1500, 1480, 1000, 1010, 990, 1005, 995, 1000, 1002, 998, 1001, 999}
	w := WarmupSplit(xs)
	if w != 4 {
		t.Fatalf("warmup = %d, want 4", w)
	}
}

func TestWarmupSplitNoChangeOnNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		xs := make([]float64, 12)
		for i := range xs {
			xs[i] = 1000 + rng.NormFloat64()*10
		}
		if w := WarmupSplit(xs); w > len(xs)/2 {
			t.Fatalf("trial %d: warmup %d exceeds half the series", trial, w)
		}
	}
	// Constant series: no information, no split.
	if w := WarmupSplit([]float64{5, 5, 5, 5, 5, 5, 5, 5}); w != 0 {
		t.Fatalf("constant series warmup = %d", w)
	}
}

func TestWarmupSplitShortSeries(t *testing.T) {
	if w := WarmupSplit([]float64{9000, 100, 101, 99, 100}); w != 0 {
		t.Fatalf("short series must not be segmented, got warmup %d", w)
	}
	if w := WarmupSplit(nil); w != 0 {
		t.Fatalf("empty series warmup = %d", w)
	}
}

func TestWarmupSplitCapHalf(t *testing.T) {
	// A drift that looks like endless warmup must still leave half the
	// series as steady state.
	xs := make([]float64, 16)
	for i := range xs {
		xs[i] = float64(10000 - i*500)
	}
	if w := WarmupSplit(xs); w > len(xs)/2 {
		t.Fatalf("warmup %d exceeds cap %d", w, len(xs)/2)
	}
}

func TestBootstrapMedianCI(t *testing.T) {
	xs := []float64{95, 98, 100, 101, 102, 99, 100, 103, 97, 100}
	ci := BootstrapMedianCI(xs, 0.95, 1000, 1)
	if !(ci.Lo <= 100 && 100 <= ci.Hi) {
		t.Fatalf("CI [%v, %v] excludes the sample median", ci.Lo, ci.Hi)
	}
	if ci.Lo < 95 || ci.Hi > 103 {
		t.Fatalf("CI [%v, %v] outside the sample range", ci.Lo, ci.Hi)
	}
	// Determinism: same samples + seed → same interval, for reproducible
	// evidence files.
	ci2 := BootstrapMedianCI(xs, 0.95, 1000, 1)
	if ci != ci2 {
		t.Fatalf("bootstrap not deterministic: %+v vs %+v", ci, ci2)
	}
}

func TestBootstrapEffectCI(t *testing.T) {
	a := []float64{130, 131, 129, 132, 130, 128, 131, 130}
	b := []float64{100, 101, 99, 100, 102, 98, 100, 101}
	ci := BootstrapEffectCI(a, b, 0.95, 1000, 1)
	if ci.Lo <= 0 {
		t.Fatalf("a is ~30%% slower than b; effect CI [%v, %v] should exclude 0", ci.Lo, ci.Hi)
	}
	if ci.Lo > 30 || ci.Hi < 30 {
		t.Fatalf("effect CI [%v, %v] should bracket +30%%", ci.Lo, ci.Hi)
	}
}

func TestMannWhitneySeparated(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5, 6}
	b := []float64{10, 11, 12, 13, 14, 15}
	if p := MannWhitneyP(a, b); p > 0.01 {
		t.Fatalf("fully separated samples: p = %v", p)
	}
	if p1, p2 := MannWhitneyP(a, b), MannWhitneyP(b, a); math.Abs(p1-p2) > 1e-12 {
		t.Fatalf("p not symmetric: %v vs %v", p1, p2)
	}
}

func TestMannWhitneyIdentical(t *testing.T) {
	a := []float64{5, 5, 5, 5, 5}
	if p := MannWhitneyP(a, a); p != 1 {
		t.Fatalf("all-tied samples: p = %v, want 1", p)
	}
	b := []float64{1, 2, 3, 4, 5}
	if p := MannWhitneyP(b, b); p < 0.9 {
		t.Fatalf("identical samples: p = %v", p)
	}
}

func TestMannWhitneyDegenerate(t *testing.T) {
	if p := MannWhitneyP(nil, []float64{1, 2}); p != 1 {
		t.Fatalf("empty side: p = %v, want 1", p)
	}
}

func TestMannWhitneyOverlapping(t *testing.T) {
	// Heavily overlapping noise should not be significant.
	rng := rand.New(rand.NewSource(7))
	reject := 0
	for trial := 0; trial < 50; trial++ {
		a := make([]float64, 8)
		b := make([]float64, 8)
		for i := range a {
			a[i] = 100 + rng.NormFloat64()
			b[i] = 100 + rng.NormFloat64()
		}
		if MannWhitneyP(a, b) < 0.05 {
			reject++
		}
	}
	// The false-positive rate at alpha 0.05 should be around 5%, certainly
	// not 20%+.
	if reject > 8 {
		t.Fatalf("null rejected %d/50 times at alpha 0.05", reject)
	}
}
