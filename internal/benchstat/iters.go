package benchstat

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// IterRecord is one line of the per-iteration JSONL stream the benchmark
// harness emits under its -iters flag: the wall-clock nanoseconds of one
// in-process iteration of one benchmark. The in-process ordering is what
// makes warmup segmentation meaningful — across processes every iteration
// starts cold.
type IterRecord struct {
	Benchmark string  `json:"benchmark"`
	Iter      int     `json:"iter"`
	Ns        float64 `json:"ns"`
}

// ParseIters reads a -iters JSONL stream into per-benchmark series in
// emission order. Malformed lines and non-finite or non-positive timings
// are errors: a corrupted timing stream must not silently become a
// shorter (or zero-padded) series.
func ParseIters(r io.Reader) (map[string][]float64, error) {
	series := map[string][]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec IterRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, fmt.Errorf("benchstat: iters line %d: %w", lineno, err)
		}
		if rec.Benchmark == "" {
			return nil, fmt.Errorf("benchstat: iters line %d: missing benchmark name", lineno)
		}
		if math.IsNaN(rec.Ns) || math.IsInf(rec.Ns, 0) || rec.Ns <= 0 {
			return nil, fmt.Errorf("benchstat: iters line %d: invalid ns %v", lineno, rec.Ns)
		}
		series[rec.Benchmark] = append(series[rec.Benchmark], rec.Ns)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchstat: reading iters: %w", err)
	}
	return series, nil
}
