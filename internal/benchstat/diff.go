package benchstat

import (
	"fmt"
	"io"
	"sort"

	"jvmpower/internal/stats"
)

// DiffOptions tune the regression gate.
type DiffOptions struct {
	Alpha     float64 // significance level; <=0 → 0.05
	BudgetPct float64 // regressions below this size never gate; <=0 → 2%
	Seed      int64   // bootstrap seed; 0 → 1
}

// DiffRow is the comparison of one benchmark across two reports.
type DiffRow struct {
	Name        string
	OldMedian   float64
	NewMedian   float64
	EffectPct   float64 // (new/old − 1)·100; positive = slower
	EffectCI    CI
	P           float64
	Significant bool
	Regression  bool // significant, slower, and above budget
	Note        string
}

// DiffResult is the outcome of diffing two reports.
type DiffResult struct {
	Rows             []DiffRow
	CrossEnvironment bool   // environments differ; rows are labels, not claims
	EnvironmentNote  string // human-readable mismatch description
	Alpha, BudgetPct float64
}

// Failed reports whether the gate should fail: at least one same-
// environment statistically significant regression above budget. A
// cross-environment diff never fails — those numbers are context, and
// gating on them would launder a machine change into a code regression.
func (d *DiffResult) Failed() bool {
	if d.CrossEnvironment {
		return false
	}
	for _, r := range d.Rows {
		if r.Regression {
			return true
		}
	}
	return false
}

// Diff compares every benchmark present in both reports. A regression is
// declared only when the rank test and the bootstrap effect CI agree the
// new build is slower AND the median effect exceeds the budget — a
// significant 0.3% slowdown is real but not actionable, and an
// insignificant 10% one is noise, not evidence.
func Diff(oldR, newR *Report, opt DiffOptions) *DiffResult {
	if opt.Alpha <= 0 {
		opt.Alpha = 0.05
	}
	if opt.BudgetPct <= 0 {
		opt.BudgetPct = 2
	}
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	res := &DiffResult{Alpha: opt.Alpha, BudgetPct: opt.BudgetPct}
	if !oldR.Environment.Same(newR.Environment) {
		res.CrossEnvironment = true
		res.EnvironmentNote = fmt.Sprintf(
			"environments differ (old %s/%s %q x%d, new %s/%s %q x%d): cross-environment numbers are labeled context, not regression claims",
			oldR.Environment.GOOS, oldR.Environment.GOARCH, oldR.Environment.CPU, oldR.Environment.GOMAXPROCS,
			newR.Environment.GOOS, newR.Environment.GOARCH, newR.Environment.CPU, newR.Environment.GOMAXPROCS)
	}
	names := make([]string, 0, len(oldR.Benchmarks))
	for name := range oldR.Benchmarks {
		if _, ok := newR.Benchmarks[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		ob, nb := oldR.Benchmarks[name], newR.Benchmarks[name]
		os, ns := ob.Samples(), nb.Samples()
		row := DiffRow{
			Name:      name,
			OldMedian: stats.Median(os),
			NewMedian: stats.Median(ns),
		}
		if row.OldMedian != 0 {
			row.EffectPct = (row.NewMedian/row.OldMedian - 1) * 100
		}
		if len(os) < 3 || len(ns) < 3 {
			row.Note = "insufficient samples for significance (need >= 3 per side)"
			res.Rows = append(res.Rows, row)
			continue
		}
		row.EffectCI = BootstrapEffectCI(ns, os, 0.95, DefaultResamples, opt.Seed)
		row.P = MannWhitneyP(ns, os)
		row.Significant = row.P < opt.Alpha && (row.EffectCI.Lo > 0 || row.EffectCI.Hi < 0)
		row.Regression = row.Significant && row.EffectPct > opt.BudgetPct
		if res.CrossEnvironment {
			row.Regression = false
			row.Note = "cross-environment: labeled, not gated"
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// WriteText renders the diff as a human-readable table with the verdict.
func (d *DiffResult) WriteText(w io.Writer) {
	if d.EnvironmentNote != "" {
		fmt.Fprintf(w, "note: %s\n", d.EnvironmentNote)
	}
	fmt.Fprintf(w, "%-40s %14s %14s %9s %22s %8s  %s\n",
		"benchmark", "old median", "new median", "delta", "95% CI", "p", "verdict")
	for _, r := range d.Rows {
		var verdict string
		switch {
		case r.EffectCI.Resamples == 0: // significance never computed
			verdict = "skipped"
		case d.CrossEnvironment:
			verdict = "cross-environment (labeled, not gated)"
		case r.Regression:
			verdict = "REGRESSION"
		case r.Significant && r.EffectPct > 0:
			verdict = "slower (within budget)"
		case r.Significant && r.EffectPct < 0:
			verdict = "faster"
		default:
			verdict = "no significant change"
		}
		fmt.Fprintf(w, "%-40s %14.0f %14.0f %+8.2f%% [%+7.2f%%, %+7.2f%%] %8.4f  %s\n",
			r.Name, r.OldMedian, r.NewMedian, r.EffectPct, r.EffectCI.Lo, r.EffectCI.Hi, r.P, verdict)
		if r.Note != "" {
			fmt.Fprintf(w, "%-40s   %s\n", "", r.Note)
		}
	}
	if d.Failed() {
		fmt.Fprintf(w, "gate: FAIL (significant regression above %.1f%% budget at alpha %.2f)\n", d.BudgetPct, d.Alpha)
	} else {
		fmt.Fprintf(w, "gate: ok (alpha %.2f, budget %.1f%%)\n", d.Alpha, d.BudgetPct)
	}
}
