package benchstat

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: jvmpower
cpu: Intel(R) Xeon(R) CPU @ 2.20GHz
BenchmarkFig7EDP-8   	       1	1700000123 ns/op	7822477360 B/op	22223631 allocs/op
BenchmarkFig7EDP-8   	       1	1710000456 ns/op	7822477360 B/op	22223631 allocs/op
BenchmarkFig7EDPMemo-8   	       1	1600000789 ns/op	6000000000 B/op	20000000 allocs/op
BenchmarkFig7EDPMemo-8   	       1	1590000012 ns/op	6000000000 B/op	20000000 allocs/op
PASS
ok  	jvmpower	13.2s
`

func TestParseWellFormed(t *testing.T) {
	p, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Order) != 2 {
		t.Fatalf("order = %v", p.Order)
	}
	if p.Order[0] != "BenchmarkFig7EDP" || p.Order[1] != "BenchmarkFig7EDPMemo" {
		t.Fatalf("order = %v", p.Order)
	}
	b := p.Benchmarks["BenchmarkFig7EDP"]
	if len(b.NsPerOp) != 2 || b.NsPerOp[0] != 1700000123 {
		t.Fatalf("ns/op = %v", b.NsPerOp)
	}
	if len(b.BytesPerOp) != 2 || b.BytesPerOp[0] != 7822477360 {
		t.Fatalf("B/op = %v", b.BytesPerOp)
	}
	if len(b.AllocsPerOp) != 2 || b.AllocsPerOp[1] != 22223631 {
		t.Fatalf("allocs/op = %v", b.AllocsPerOp)
	}
	if p.GOOS != "linux" || p.GOARCH != "amd64" {
		t.Fatalf("goos/goarch = %q/%q", p.GOOS, p.GOARCH)
	}
	if p.CPU != "Intel(R) Xeon(R) CPU @ 2.20GHz" {
		t.Fatalf("cpu = %q", p.CPU)
	}
	if p.Procs != 8 {
		t.Fatalf("procs = %d", p.Procs)
	}
	if err := p.ValidateReps(2); err != nil {
		t.Fatal(err)
	}
}

func TestParseWithoutBenchmem(t *testing.T) {
	p, err := Parse(strings.NewReader("BenchmarkX-4   100   12345.5 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	b := p.Benchmarks["BenchmarkX"]
	if b.NsPerOp[0] != 12345.5 || len(b.BytesPerOp) != 0 {
		t.Fatalf("parsed %+v", b)
	}
}

// The awk pipeline this parser replaces coerced any malformed field to 0
// via `$3 + 0`; a zero then won the min and skewed the median. Every
// malformation must now be an explicit error.
func TestParseRejectsMalformed(t *testing.T) {
	cases := []struct {
		name, line string
	}{
		{"non-numeric ns/op", "BenchmarkX-4   100   garbage ns/op"},
		{"NaN ns/op", "BenchmarkX-4   100   NaN ns/op"},
		{"negative ns/op", "BenchmarkX-4   100   -5 ns/op"},
		{"truncated line", "BenchmarkX-4   100"},
		{"interleaved torn write", "BenchmarkX-4   100   123BenchmarkY-4 7 88 ns/op"},
		{"wrong unit", "BenchmarkX-4   100   123 us/op"},
		{"bad iteration count", "BenchmarkX-4   lots   123 ns/op"},
		{"non-numeric B/op", "BenchmarkX-4   100   123 ns/op   abc B/op"},
		{"unknown trailing unit", "BenchmarkX-4   100   123 ns/op   7 frobs/op"},
		{"dangling field", "BenchmarkX-4   100   123 ns/op   7"},
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c.line + "\n")); err == nil {
			t.Errorf("%s: parsed silently: %q", c.name, c.line)
		}
	}
}

func TestParseRejectsEmptyAndRepMismatch(t *testing.T) {
	if _, err := Parse(strings.NewReader("PASS\nok x 1s\n")); err == nil {
		t.Fatal("no benchmarks should be an error")
	}
	p, err := Parse(strings.NewReader(
		"BenchmarkA-4 1 100 ns/op\nBenchmarkA-4 1 101 ns/op\nBenchmarkB-4 1 200 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ValidateReps(2); err == nil {
		t.Fatal("rep-count mismatch must error")
	}
}

func TestParseRejectsProcsChange(t *testing.T) {
	_, err := Parse(strings.NewReader("BenchmarkA-4 1 100 ns/op\nBenchmarkA-8 1 100 ns/op\n"))
	if err == nil {
		t.Fatal("GOMAXPROCS change mid-run must error")
	}
}
