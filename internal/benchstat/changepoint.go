package benchstat

import "math"

// WarmupSplit returns the number of leading iterations of xs to classify
// as warmup, leaving xs[warmup:] as the steady-state segment.
//
// It runs iterative binary changepoint segmentation on the series mean:
// the best two-segment fit is accepted over the one-segment fit when it
// wins under a BIC-style penalty (n·ln(SSE1/SSE2) > 2·ln n), and the
// prefix before the changepoint is peeled off and the search repeated —
// real warmup often has several phases (first iteration page faults, then
// a cache-filling shoulder). This is the cheap cousin of the PELT
// segmentation "Virtual Machine Warmup Blows Hot and Cold" uses; the
// simplification is safe here because we only need the final steady
// segment, not every phase boundary.
//
// Total warmup is capped at half the series so a steady segment always
// remains, and series shorter than minSeriesLen are returned whole
// (warmup 0): with so few samples a split is indistinguishable from
// noise.
func WarmupSplit(xs []float64) int {
	const minSeriesLen = 6
	warmup := 0
	cap := len(xs) / 2
	for {
		rest := xs[warmup:]
		if len(rest) < minSeriesLen || warmup >= cap {
			return warmup
		}
		k := bestSplit(rest, cap-warmup)
		if k == 0 {
			return warmup
		}
		warmup += k
	}
}

// bestSplit finds the split k (1 <= k <= maxK) minimizing the two-segment
// sum of squared errors and returns it if it beats the one-segment fit
// under the BIC penalty, else 0. minSteady samples must remain after the
// split.
func bestSplit(xs []float64, maxK int) int {
	const minSteady = 3
	n := len(xs)
	if maxK > n-minSteady {
		maxK = n - minSteady
	}
	if maxK < 1 {
		return 0
	}
	// Prefix sums make SSE(a..b) = Σx² − (Σx)²/len an O(1) query.
	sum := make([]float64, n+1)
	sumsq := make([]float64, n+1)
	for i, x := range xs {
		sum[i+1] = sum[i] + x
		sumsq[i+1] = sumsq[i] + x*x
	}
	sse := func(a, b int) float64 { // [a, b)
		m := float64(b - a)
		s := sum[b] - sum[a]
		v := (sumsq[b] - sumsq[a]) - s*s/m
		if v < 0 { // rounding
			v = 0
		}
		return v
	}
	sse1 := sse(0, n)
	bestK, bestSSE := 0, math.Inf(1)
	for k := 1; k <= maxK; k++ {
		if s := sse(0, k) + sse(k, n); s < bestSSE {
			bestK, bestSSE = k, s
		}
	}
	if bestK == 0 {
		return 0
	}
	// BIC-style acceptance: the split costs two extra parameters (a second
	// mean and the changepoint location), each priced ln n.
	if bestSSE == 0 {
		if sse1 > 0 {
			return bestK
		}
		return 0 // constant series: no information, no split
	}
	if float64(n)*math.Log(sse1/bestSSE) > 2*math.Log(float64(n)) {
		return bestK
	}
	return 0
}
