// Package benchstat turns raw benchmark output into statistically sound
// evidence. It replaces the awk pipeline that used to back bench.sh with:
//
//   - a strict parser for `go test -bench` output that rejects malformed
//     lines and short repetition counts instead of coercing them to 0,
//   - warmup/steady-state segmentation of in-process iteration series via
//     changepoint detection (after "Virtual Machine Warmup Blows Hot and
//     Cold": benchmarks do not start in steady state, and averaging the
//     warmup into the estimate biases every comparison),
//   - bootstrap percentile confidence intervals on the steady-state
//     segment instead of bare point estimates, and
//   - a two-sample significance test (Mann–Whitney U, backed by a
//     bootstrap CI on the effect) that replaces the old binary
//     below_noise flag on every comparison.
//
// cmd/benchgate is the CLI over this package; bench.sh and the CI
// regression gate both drive it.
package benchstat

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"strconv"
	"strings"
)

// BenchSamples holds every repetition `go test -bench` reported for one
// benchmark (the -GOMAXPROCS suffix is stripped from the name).
type BenchSamples struct {
	Name        string
	NsPerOp     []float64
	BytesPerOp  []int64 // empty unless -benchmem
	AllocsPerOp []int64
	Iterations  []int64 // b.N of each repetition
}

// Parsed is the result of reading one `go test -bench` run.
type Parsed struct {
	Order      []string // benchmark names in first-seen order
	Benchmarks map[string]*BenchSamples
	GOOS       string // from the "goos:" header line, if present
	GOARCH     string
	CPU        string // from the "cpu:" header line, if present
	Procs      int    // GOMAXPROCS from the -N name suffix, 0 if absent
}

var procSuffix = regexp.MustCompile(`-(\d+)$`)

// Parse reads `go test -bench` output. Lines whose first field starts
// with "Benchmark" must conform exactly to the benchmark result grammar
// (name, iteration count, "<float> ns/op", optional "<int> B/op" and
// "<int> allocs/op"); anything else on such a line — a truncated write
// from an interleaved process, a non-numeric field, a NaN — is an error,
// never a silent zero. Non-benchmark lines (headers, PASS, ok, test logs)
// are ignored, except the goos/goarch/cpu headers, which are captured as
// environment evidence.
func Parse(r io.Reader) (*Parsed, error) {
	p := &Parsed{Benchmarks: map[string]*BenchSamples{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			p.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos: "))
			continue
		case strings.HasPrefix(line, "goarch: "):
			p.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch: "))
			continue
		case strings.HasPrefix(line, "cpu: "):
			p.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu: "))
			continue
		}
		fields := strings.Fields(line)
		if len(fields) == 0 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		// Second rune after "Benchmark" must be uppercase or a digit for a
		// result line ("Benchmarking..." prose would not be); but stay
		// strict: any Benchmark-prefixed first field is treated as a
		// result line and must parse fully.
		if err := p.parseResultLine(fields); err != nil {
			return nil, fmt.Errorf("benchstat: line %d: %w: %q", lineno, err, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchstat: reading bench output: %w", err)
	}
	if len(p.Order) == 0 {
		return nil, fmt.Errorf("benchstat: no benchmark results found")
	}
	return p, nil
}

func (p *Parsed) parseResultLine(fields []string) error {
	if len(fields) < 4 {
		return fmt.Errorf("truncated benchmark line (%d fields)", len(fields))
	}
	name := fields[0]
	if m := procSuffix.FindStringSubmatch(name); m != nil {
		name = strings.TrimSuffix(name, m[0])
		procs, _ := strconv.Atoi(m[1])
		if p.Procs == 0 {
			p.Procs = procs
		} else if p.Procs != procs {
			return fmt.Errorf("GOMAXPROCS changed mid-run (%d then %d)", p.Procs, procs)
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil || iters <= 0 {
		return fmt.Errorf("bad iteration count %q", fields[1])
	}
	if fields[3] != "ns/op" {
		return fmt.Errorf("expected ns/op unit, got %q", fields[3])
	}
	ns, err := strconv.ParseFloat(fields[2], 64)
	if err != nil {
		return fmt.Errorf("non-numeric ns/op %q", fields[2])
	}
	if math.IsNaN(ns) || math.IsInf(ns, 0) || ns < 0 {
		return fmt.Errorf("invalid ns/op %v", ns)
	}
	b := p.Benchmarks[name]
	if b == nil {
		b = &BenchSamples{Name: name}
		p.Benchmarks[name] = b
		p.Order = append(p.Order, name)
	}
	b.NsPerOp = append(b.NsPerOp, ns)
	b.Iterations = append(b.Iterations, iters)

	// Optional -benchmem pairs, in fixed order: B/op then allocs/op.
	rest := fields[4:]
	for len(rest) >= 2 {
		v, err := strconv.ParseInt(rest[0], 10, 64)
		if err != nil {
			return fmt.Errorf("non-numeric %s value %q", rest[1], rest[0])
		}
		switch rest[1] {
		case "B/op":
			b.BytesPerOp = append(b.BytesPerOp, v)
		case "allocs/op":
			b.AllocsPerOp = append(b.AllocsPerOp, v)
		default:
			return fmt.Errorf("unknown unit %q", rest[1])
		}
		rest = rest[2:]
	}
	if len(rest) != 0 {
		return fmt.Errorf("dangling field %q", rest[0])
	}
	return nil
}

// ValidateReps errors unless every benchmark reported exactly count
// repetitions — the old awk pipeline happily computed a "median" over
// whatever subset of lines survived output interleaving.
func (p *Parsed) ValidateReps(count int) error {
	for _, name := range p.Order {
		if got := len(p.Benchmarks[name].NsPerOp); got != count {
			return fmt.Errorf("benchstat: %s has %d repetitions, want %d", name, got, count)
		}
	}
	return nil
}
