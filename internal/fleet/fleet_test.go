package fleet

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"jvmpower/internal/pointproto"
	"jvmpower/internal/supervisor"
)

// leakCheck is the goroutine-hygiene assertion every chaos scenario runs
// under: call before the work, invoke the returned func after teardown, and
// any goroutine that outlives the scenario fails the test with stacks.
func leakCheck(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for runtime.NumGoroutine() > before {
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Fatalf("goroutine leak: %d before, %d after\n%s",
					before, runtime.NumGoroutine(), buf[:n])
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// startServe runs a real executor node on a loopback listener and returns
// its address plus a shutdown that waits for Serve to unwind.
func startServe(t *testing.T, cfg ServeConfig) (string, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		Serve(ctx, ln, cfg)
	}()
	return ln.Addr().String(), func() {
		cancel()
		<-done
	}
}

// scriptedNode runs a raw-protocol node: script handles each accepted
// connection (the conn is closed for it afterwards). Used to inject the
// protocol-level failures Serve would never produce.
func scriptedNode(t *testing.T, script func(connIdx int, conn net.Conn)) (string, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			conn, err := ln.Accept()
			if err != nil {
				wg.Wait()
				return
			}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer conn.Close()
				script(i, conn)
			}(i)
		}
	}()
	return ln.Addr().String(), func() {
		ln.Close()
		<-done
	}
}

// sendNodeHello performs the node side of the handshake on a scripted conn.
func sendNodeHello(conn net.Conn, capacity uint64) error {
	h := pointproto.NodeHello{Version: pointproto.Version, Name: "scripted", Capacity: capacity}
	return pointproto.WriteFrame(conn, pointproto.MsgNodeHello, pointproto.MarshalNodeHello(h))
}

// shardFor finds a shard string whose affine placement is the given node,
// mirroring preferredLocked's hash.
func shardFor(nodeIdx, nNodes int) string {
	for i := 0; ; i++ {
		s := fmt.Sprintf("shard-%d", i)
		h := fnv.New64a()
		h.Write([]byte(s))
		if int(h.Sum64()%uint64(nNodes)) == nodeIdx {
			return s
		}
	}
}

// waitCounter waits for a metrics counter to reach min.
func waitCounter(t *testing.T, c *Coordinator, name string, min int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for c.Metrics().Counter(name).Value() < min {
		if time.Now().After(deadline) {
			t.Fatalf("counter %s stuck at %d, want >= %d", name, c.Metrics().Counter(name).Value(), min)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// echoHandler returns a handler answering each spec with a payload derived
// from its bench name, with an optional per-point delay and execution
// counter.
func echoHandler(delay time.Duration, execs *atomic.Int64) func(pointproto.Spec) []byte {
	return func(s pointproto.Spec) []byte {
		if execs != nil {
			execs.Add(1)
		}
		if delay > 0 {
			time.Sleep(delay)
		}
		return []byte("result:" + s.Bench)
	}
}

// TestFleetRoundTrip: one node, a handful of points, payloads intact.
func TestFleetRoundTrip(t *testing.T) {
	check := leakCheck(t)
	addr, stop := startServe(t, ServeConfig{Handler: echoHandler(0, nil), Capacity: 2})
	c := New(Config{Nodes: []string{addr}})
	for i := 0; i < 5; i++ {
		bench := fmt.Sprintf("b%d", i)
		got, err := c.Run(context.Background(), "fig", "key-"+bench, pointproto.Spec{Bench: bench})
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != "result:"+bench {
			t.Fatalf("payload = %q", got)
		}
	}
	c.Close()
	stop()
	check()
}

// TestStealUnderSkew pins every point's affinity to one slow node and
// asserts the idle node steals: the campaign finishes with both nodes
// having executed points and the steal counters advanced.
func TestStealUnderSkew(t *testing.T) {
	check := leakCheck(t)
	var slowExecs, fastExecs atomic.Int64
	slowAddr, stopSlow := startServe(t, ServeConfig{Handler: echoHandler(40*time.Millisecond, &slowExecs), Capacity: 1})
	fastAddr, stopFast := startServe(t, ServeConfig{Handler: echoHandler(0, &fastExecs), Capacity: 1})
	c := New(Config{Nodes: []string{slowAddr, fastAddr}})
	shard := shardFor(0, 2) // every point prefers the slow node

	const points = 12
	var wg sync.WaitGroup
	errs := make([]error, points)
	for i := 0; i < points; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			bench := fmt.Sprintf("b%d", i)
			got, err := c.Run(context.Background(), shard, "key-"+bench, pointproto.Spec{Bench: bench})
			if err == nil && string(got) != "result:"+bench {
				err = fmt.Errorf("payload = %q", got)
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("point %d: %v", i, err)
		}
	}
	reg := c.Metrics()
	if v := reg.Counter("fleet.steals").Value(); v == 0 {
		t.Fatal("skewed campaign recorded no steals")
	}
	if v := reg.Counter("fleet.steals.points").Value(); v == 0 {
		t.Fatal("skewed campaign stole no points")
	}
	if fastExecs.Load() == 0 {
		t.Fatal("idle node executed nothing: stealing is not rescuing skew")
	}
	if slowExecs.Load()+fastExecs.Load() != points {
		t.Fatalf("executions = %d slow + %d fast, want %d total", slowExecs.Load(), fastExecs.Load(), points)
	}
	c.Close()
	stopSlow()
	stopFast()
	check()
}

// TestNoDoubleExecution: concurrent and repeated Runs of one dedupe key
// execute the point exactly once — joins coalesce, completions memoize.
func TestNoDoubleExecution(t *testing.T) {
	check := leakCheck(t)
	var execs atomic.Int64
	addr, stop := startServe(t, ServeConfig{Handler: echoHandler(10*time.Millisecond, &execs), Capacity: 4})
	c := New(Config{Nodes: []string{addr}})

	const callers = 10
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := c.Run(context.Background(), "fig", "the-key", pointproto.Spec{Bench: "db"})
			if err != nil || string(got) != "result:db" {
				t.Errorf("Run = %q, %v", got, err)
			}
		}()
	}
	wg.Wait()
	// And once more after completion: the memoized payload, no execution.
	if got, err := c.Run(context.Background(), "fig", "the-key", pointproto.Spec{Bench: "db"}); err != nil || string(got) != "result:db" {
		t.Fatalf("post-completion Run = %q, %v", got, err)
	}
	if n := execs.Load(); n != 1 {
		t.Fatalf("point executed %d times, want exactly 1", n)
	}
	reg := c.Metrics()
	if v := reg.Counter("fleet.points").Value(); v != 1 {
		t.Fatalf("fleet.points = %d, want 1", v)
	}
	if v := reg.Counter("fleet.dedupe.hits").Value(); v != callers {
		t.Fatalf("fleet.dedupe.hits = %d, want %d", v, callers)
	}
	c.Close()
	stop()
	check()
}

// TestRequeueExactlyOnce: a node that kills its first connection after
// receiving a task forces a requeue; the reconnected node then serves it.
// Exactly one requeue, exactly one disconnect, and the point still lands.
func TestRequeueExactlyOnce(t *testing.T) {
	check := leakCheck(t)
	addr, stop := scriptedNode(t, func(connIdx int, conn net.Conn) {
		if err := sendNodeHello(conn, 1); err != nil {
			return
		}
		for {
			typ, payload, err := pointproto.ReadFrame(conn)
			if err != nil || typ != pointproto.MsgTask {
				return
			}
			task, err := pointproto.UnmarshalTask(payload)
			if err != nil {
				return
			}
			if connIdx == 0 {
				return // die mid-point: the deferred close drops the conn
			}
			res := pointproto.MarshalTaskResult(pointproto.TaskResult{ID: task.ID, Payload: []byte("ok")})
			if pointproto.WriteFrame(conn, pointproto.MsgTaskResult, res) != nil {
				return
			}
		}
	})
	c := New(Config{Nodes: []string{addr}, HeartbeatTimeout: 2 * time.Second})
	got, err := c.Run(context.Background(), "fig", "k", pointproto.Spec{Bench: "db"})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "ok" {
		t.Fatalf("payload = %q", got)
	}
	reg := c.Metrics()
	if v := reg.Counter("fleet.requeues").Value(); v != 1 {
		t.Fatalf("fleet.requeues = %d, want 1", v)
	}
	if v := reg.Counter("fleet.crashes." + supervisor.CrashDisconnect.String()).Value(); v != 1 {
		t.Fatalf("disconnect crashes = %d, want 1", v)
	}
	c.Close()
	stop()
	check()
}

// TestSecondDeathFails: a node that kills every connection mid-point burns
// the task's single requeue and the task fails with the classified crash —
// the fleet analogue of the dispatcher's abortive-failure rule.
func TestSecondDeathFails(t *testing.T) {
	check := leakCheck(t)
	addr, stop := scriptedNode(t, func(connIdx int, conn net.Conn) {
		if sendNodeHello(conn, 1) != nil {
			return
		}
		pointproto.ReadFrame(conn) // swallow the task, then die
	})
	c := New(Config{Nodes: []string{addr}, HeartbeatTimeout: 2 * time.Second})
	_, err := c.Run(context.Background(), "fig", "k", pointproto.Spec{Bench: "db"})
	ce, ok := supervisor.AsCrash(err)
	if !ok {
		t.Fatalf("err = %v, want CrashError", err)
	}
	if ce.Kind != supervisor.CrashDisconnect {
		t.Fatalf("crash kind = %s, want disconnect", ce.Kind)
	}
	if v := c.Metrics().Counter("fleet.requeues").Value(); v != 1 {
		t.Fatalf("fleet.requeues = %d, want exactly 1", v)
	}
	c.Close()
	stop()
	check()
}

// TestBreakerOpensNodePermanently: enough consecutive deaths open the
// node's breaker; with the whole fleet down, further Runs fail fast
// instead of queueing forever.
func TestBreakerOpensNodePermanently(t *testing.T) {
	check := leakCheck(t)
	addr, stop := scriptedNode(t, func(connIdx int, conn net.Conn) {
		if sendNodeHello(conn, 1) != nil {
			return
		}
		pointproto.ReadFrame(conn)
	})
	c := New(Config{Nodes: []string{addr}, BreakerThreshold: 2, HeartbeatTimeout: 2 * time.Second})
	if _, err := c.Run(context.Background(), "fig", "k1", pointproto.Spec{Bench: "a"}); err == nil {
		t.Fatal("task on an always-dying node succeeded")
	}
	if v := c.Metrics().Counter("fleet.breakers.opened").Value(); v != 1 {
		t.Fatalf("breakers.opened = %d, want 1", v)
	}
	// The fleet is now entirely down: fail fast, not hang.
	done := make(chan error, 1)
	go func() {
		_, err := c.Run(context.Background(), "fig", "k2", pointproto.Spec{Bench: "b"})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Run on an all-down fleet succeeded")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run on an all-down fleet hung")
	}
	c.Close()
	stop()
	check()
}

// TestChaosDroppedMidFrame: a node that tears a TaskResult frame mid-
// payload classifies as disconnect (ErrUnexpectedEOF, not a clean EOF) and
// the point is rescued by the healthy node.
func TestChaosDroppedMidFrame(t *testing.T) {
	check := leakCheck(t)
	evilAddr, stopEvil := scriptedNode(t, func(connIdx int, conn net.Conn) {
		if sendNodeHello(conn, 1) != nil {
			return
		}
		if connIdx > 0 { // after the first death, go silent until closed
			var block [1]byte
			conn.Read(block[:])
			return
		}
		// A TaskResult header promising 100 bytes, delivering 10 before the
		// deferred close tears the frame mid-payload.
		hdr := []byte{byte(pointproto.MsgTaskResult), 0, 0, 0, 100}
		conn.Write(append(hdr, make([]byte, 10)...))
	})
	goodAddr, stopGood := startServe(t, ServeConfig{Handler: echoHandler(0, nil)})
	c := New(Config{Nodes: []string{evilAddr, goodAddr}, HeartbeatTimeout: time.Second})
	shard := shardFor(0, 2) // prefer the evil node
	got, err := c.Run(context.Background(), shard, "k", pointproto.Spec{Bench: "db"})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "result:db" {
		t.Fatalf("payload = %q", got)
	}
	waitCounter(t, c, "fleet.crashes."+supervisor.CrashDisconnect.String(), 1)
	c.Close()
	stopEvil()
	stopGood()
	check()
}

// TestChaosSlowReaderStall: a node that handshakes and then goes silent —
// no heartbeats, no results — trips the watchdog's read deadline and
// classifies as partition; the point lands on the healthy node.
func TestChaosSlowReaderStall(t *testing.T) {
	check := leakCheck(t)
	silentAddr, stopSilent := scriptedNode(t, func(connIdx int, conn net.Conn) {
		if sendNodeHello(conn, 1) != nil {
			return
		}
		var block [1]byte
		for {
			if _, err := conn.Read(block[:]); err != nil {
				return // unblocked by the coordinator or shutdown closing the conn
			}
		}
	})
	goodAddr, stopGood := startServe(t, ServeConfig{Handler: echoHandler(0, nil), HeartbeatInterval: 20 * time.Millisecond})
	c := New(Config{Nodes: []string{silentAddr, goodAddr}, HeartbeatTimeout: 250 * time.Millisecond})
	shard := shardFor(0, 2) // prefer the silent node
	got, err := c.Run(context.Background(), shard, "k", pointproto.Spec{Bench: "db"})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "result:db" {
		t.Fatalf("payload = %q", got)
	}
	waitCounter(t, c, "fleet.crashes."+supervisor.CrashPartition.String(), 1)
	c.Close()
	stopSilent()
	stopGood()
	check()
}

// TestChaosProtocolGarbage: a node that speaks garbage after the handshake
// classifies as a protocol crash, not a disconnect.
func TestChaosProtocolGarbage(t *testing.T) {
	check := leakCheck(t)
	evilAddr, stopEvil := scriptedNode(t, func(connIdx int, conn net.Conn) {
		if sendNodeHello(conn, 1) != nil {
			return
		}
		if connIdx > 0 {
			var block [1]byte
			conn.Read(block[:])
			return
		}
		conn.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
		var block [1]byte
		conn.Read(block[:]) // hold the conn open so the close is the coordinator's
	})
	goodAddr, stopGood := startServe(t, ServeConfig{Handler: echoHandler(0, nil)})
	c := New(Config{Nodes: []string{evilAddr, goodAddr}, HeartbeatTimeout: time.Second})
	shard := shardFor(0, 2)
	got, err := c.Run(context.Background(), shard, "k", pointproto.Spec{Bench: "db"})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "result:db" {
		t.Fatalf("payload = %q", got)
	}
	waitCounter(t, c, "fleet.crashes."+supervisor.CrashProtocol.String(), 1)
	c.Close()
	stopEvil()
	stopGood()
	check()
}

// TestChaosCancelMidCampaign: cancelling the campaign context mid-point
// returns promptly and the whole fleet unwinds without leaking goroutines —
// the coordinator-SIGINT scenario, since cmd/experiments maps SIGINT to
// context cancellation.
func TestChaosCancelMidCampaign(t *testing.T) {
	check := leakCheck(t)
	gate := make(chan struct{})
	addr, stop := startServe(t, ServeConfig{Handler: func(s pointproto.Spec) []byte {
		<-gate
		return []byte("late")
	}})
	c := New(Config{Nodes: []string{addr}})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := c.Run(ctx, "fig", "k", pointproto.Spec{Bench: "db"})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("cancellation took %v", d)
	}
	cancel()
	close(gate) // release the node-side point so Serve can unwind
	c.Close()
	stop()
	check()
}

// TestTaskTimeout: a point with no result inside the task budget fails as
// CrashTimeout while the node keeps heartbeating (a spinning point, not a
// dead node), and the late result is dropped as an orphan.
func TestTaskTimeout(t *testing.T) {
	check := leakCheck(t)
	gate := make(chan struct{})
	addr, stop := startServe(t, ServeConfig{Handler: func(s pointproto.Spec) []byte {
		<-gate
		return []byte("late")
	}, HeartbeatInterval: 20 * time.Millisecond})
	c := New(Config{Nodes: []string{addr}, TaskTimeout: 150 * time.Millisecond})
	_, err := c.Run(context.Background(), "fig", "k", pointproto.Spec{Bench: "db"})
	ce, ok := supervisor.AsCrash(err)
	if !ok || ce.Kind != supervisor.CrashTimeout {
		t.Fatalf("err = %v, want CrashTimeout", err)
	}
	close(gate)
	c.Close()
	stop()
	check()
}

// TestServeHandshakeEnvironment: the NodeHello a real node sends carries
// protocol version, capacity, and the benchstat-style environment capture.
func TestServeHandshakeEnvironment(t *testing.T) {
	check := leakCheck(t)
	addr, stop := startServe(t, ServeConfig{Name: "envnode", Capacity: 3, Handler: echoHandler(0, nil)})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	typ, payload, err := pointproto.ReadFrame(conn)
	if err != nil || typ != pointproto.MsgNodeHello {
		t.Fatalf("first frame = %s, %v", typ, err)
	}
	hello, err := pointproto.UnmarshalNodeHello(payload)
	if err != nil {
		t.Fatal(err)
	}
	if hello.Version != pointproto.Version || hello.Name != "envnode" || hello.Capacity != 3 {
		t.Fatalf("hello = %+v", hello)
	}
	if hello.GOOS != runtime.GOOS || hello.GOARCH != runtime.GOARCH || hello.GoVersion != runtime.Version() {
		t.Fatalf("environment capture = %+v", hello)
	}
	if hello.GOMAXPROCS == 0 || hello.NumCPU == 0 {
		t.Fatalf("parallelism capture = %+v", hello)
	}
	conn.Close()
	stop()
	check()
}

// TestFrameLengthSanity pins the wire layout the scripted nodes above
// assume: 1-byte type, 4-byte big-endian length.
func TestFrameLengthSanity(t *testing.T) {
	var lenBytes [4]byte
	binary.BigEndian.PutUint32(lenBytes[:], 100)
	if lenBytes != [4]byte{0, 0, 0, 100} {
		t.Fatal("frame length encoding drifted")
	}
}
