// Package fleet distributes characterization points across remote executor
// nodes over TCP. It is the socket sibling of internal/supervisor: the same
// framed pointproto wire format, the same crash taxonomy and circuit
// breakers, but multiplexed — each node connection opens with a NodeHello
// carrying identity, capacity, and benchstat-style environment capture,
// then carries many Task frames at once, with TaskResult frames coming back
// in whatever order points finish.
//
// The coordinator shards work by a caller-supplied shard key (the
// experiments layer uses figure|sweep-group, so a figure's points land on
// one node and share its sweep-fork memo locality) and steals across nodes
// under skew: an idle node takes a shard-coherent batch from the tail of
// the longest queue, degrading to single points when queues run shallow.
// Failure handling mirrors the supervisor: a per-frame read deadline is the
// heartbeat watchdog (an open-but-silent connection classifies as
// CrashPartition, a closed one as CrashDisconnect), every node death feeds
// a consecutive-failure breaker, and a dead node's inflight points are
// requeued exactly once — a point whose second node also dies fails with
// the crash, mirroring the dispatcher's abortive-failure rule.
//
// Determinism is load-bearing, as everywhere in this repository: nodes
// compute points through the exact same resilience stack as the in-process
// path, result payloads are memoized by the caller's content-addressed key,
// and reconnect backoff is deterministically jittered — so a figure
// rendered across N nodes under steals and disconnects is byte-identical
// to the single-process run at the same seed.
package fleet

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sort"
	"sync"
	"syscall"
	"time"

	"jvmpower/internal/metrics"
	"jvmpower/internal/pointproto"
	"jvmpower/internal/supervisor"
)

// Defaults. The node heartbeat interval (serve side) must stay well under
// the coordinator's heartbeat timeout or idle nodes classify as partitioned.
const (
	defaultHeartbeatTimeout = 5 * time.Second
	defaultDialTimeout      = 5 * time.Second
	defaultBreakerThreshold = 3

	reconnectBackoffBase = 50 * time.Millisecond
	reconnectBackoffMax  = 2 * time.Second
)

var errClosed = errors.New("fleet: coordinator closed")

// Config configures a Coordinator.
type Config struct {
	// Nodes are the executor addresses (host:port) to dial.
	Nodes []string
	// Metrics receives fleet.* instruments. Defaults to a fresh registry.
	Metrics *metrics.Registry
	// HeartbeatTimeout is the per-frame read deadline: a connection silent
	// this long is declared partitioned. It doubles as the write deadline,
	// so a node that stops draining its socket (the slow-reader stall)
	// fails the same watchdog. Defaults to 5s.
	HeartbeatTimeout time.Duration
	// DialTimeout bounds each connection attempt. Defaults to 5s.
	DialTimeout time.Duration
	// TaskTimeout bounds one point's wall time across the fleet; a point
	// with no result in budget fails as CrashTimeout (the node may still
	// be heartbeating — this catches a point spinning, not a node dying).
	// Zero disables.
	TaskTimeout time.Duration
	// BreakerThreshold opens a node's breaker after this many consecutive
	// deaths; the node is then permanently down for the run (no half-open
	// timer — reopening on wall clock would make output depend on
	// scheduling). 0 means the default (3); negative disables.
	BreakerThreshold int
	// Stderr, when set, receives node lifecycle log lines.
	Stderr io.Writer
	// OnNodeEvent, when set, observes node lifecycle transitions
	// (event "up", "down", "breaker-open", "draining", "drained") for
	// journaling.
	OnNodeEvent func(node, event, detail string)
}

// outcome is a resolved task: a result payload or a terminal error.
type outcome struct {
	payload []byte
	err     error
}

// task is one scheduled point. done closes exactly once, when the outcome
// is set; requeued marks that the task already survived one node death.
type task struct {
	key      string
	shard    string
	spec     pointproto.Spec
	owner    *node // node whose queue or inflight map holds it
	requeued bool
	done     chan struct{}
	out      outcome
}

// node is one configured executor and its connection lifecycle state.
// All fields below the breaker are guarded by Coordinator.mu.
type node struct {
	idx     int
	addr    string
	breaker *supervisor.Breaker

	name     string
	capacity int
	up       bool
	down     bool // permanent: breaker opened or node drained
	draining bool // node announced graceful drain (MsgNodeGoodbye pending EOF)
	gen      uint64
	conn     net.Conn
	nextID   uint64
	queue    []*task
	inflight map[uint64]*task
}

// Coordinator owns the fleet: one lifecycle goroutine per configured node,
// a shared scheduler state under one mutex, and a condition variable that
// wakes senders when work or capacity appears.
type Coordinator struct {
	cfg    Config
	nodes  []*node
	closed chan struct{}
	once   sync.Once
	wg     sync.WaitGroup

	mu        sync.Mutex
	cond      *sync.Cond
	shut      bool
	tasks     map[string]*task // pending or inflight, by dedupe key
	completed map[string][]byte
	lastCrash error
}

// New starts a coordinator dialing every configured node. Callers must
// Close it to release connections and goroutines.
func New(cfg Config) *Coordinator {
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = defaultHeartbeatTimeout
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = defaultDialTimeout
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = defaultBreakerThreshold
	}
	c := &Coordinator{
		cfg:       cfg,
		closed:    make(chan struct{}),
		tasks:     make(map[string]*task),
		completed: make(map[string][]byte),
	}
	c.cond = sync.NewCond(&c.mu)
	for i, addr := range cfg.Nodes {
		n := &node{
			idx:      i,
			addr:     addr,
			name:     addr,
			capacity: 1,
			breaker:  supervisor.NewBreaker(cfg.BreakerThreshold),
			inflight: make(map[uint64]*task),
		}
		c.nodes = append(c.nodes, n)
		c.wg.Add(1)
		go c.nodeLoop(n)
	}
	return c
}

// Metrics returns the coordinator's registry (the configured one, or the
// registry New defaulted in).
func (c *Coordinator) Metrics() *metrics.Registry { return c.cfg.Metrics }

// Run executes one point on the fleet and returns its opaque result
// payload. key is the content-addressed dedupe key: a key that already
// succeeded returns the memoized payload without executing again, and
// concurrent calls for one key coalesce onto a single execution. shard
// groups points for placement and batch stealing. A failed key is not
// memoized — the caller decides whether to retry.
func (c *Coordinator) Run(ctx context.Context, shard, key string, spec pointproto.Spec) ([]byte, error) {
	c.mu.Lock()
	if c.shut {
		c.mu.Unlock()
		return nil, errClosed
	}
	if p, ok := c.completed[key]; ok {
		c.cfg.Metrics.Counter("fleet.dedupe.hits").Inc()
		c.mu.Unlock()
		return p, nil
	}
	if t, ok := c.tasks[key]; ok {
		c.cfg.Metrics.Counter("fleet.dedupe.hits").Inc()
		c.mu.Unlock()
		return c.wait(ctx, t, nil)
	}
	t := &task{key: key, shard: shard, spec: spec, done: make(chan struct{})}
	if !c.enqueueLocked(t, nil) {
		err := t.out.err
		c.mu.Unlock()
		return nil, err
	}
	c.tasks[key] = t
	c.cond.Broadcast()
	c.mu.Unlock()

	var timeout <-chan time.Time
	if c.cfg.TaskTimeout > 0 {
		tm := time.NewTimer(c.cfg.TaskTimeout)
		defer tm.Stop()
		timeout = tm.C
	}
	return c.wait(ctx, t, timeout)
}

func (c *Coordinator) wait(ctx context.Context, t *task, timeout <-chan time.Time) ([]byte, error) {
	select {
	case <-t.done:
		return t.out.payload, t.out.err
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-timeout:
		return c.timeOut(t)
	}
}

// timeOut resolves a task whose wall-time budget expired. A result that
// raced in wins; otherwise the task fails as CrashTimeout and any late
// result counts as an orphan.
func (c *Coordinator) timeOut(t *task) ([]byte, error) {
	c.mu.Lock()
	select {
	case <-t.done:
		c.mu.Unlock()
		return t.out.payload, t.out.err
	default:
	}
	c.removeLocked(t)
	ce := &supervisor.CrashError{
		Kind:   supervisor.CrashTimeout,
		Detail: fmt.Sprintf("fleet: no result within %v", c.cfg.TaskTimeout),
	}
	c.cfg.Metrics.Counter("fleet.crashes." + supervisor.CrashTimeout.String()).Inc()
	c.failLocked(t, ce)
	c.mu.Unlock()
	return nil, ce
}

// Close fails every unresolved task, tears down connections, and waits for
// all fleet goroutines to exit. Idempotent.
func (c *Coordinator) Close() {
	c.once.Do(func() {
		close(c.closed)
		c.mu.Lock()
		c.shut = true
		for _, n := range c.nodes {
			if n.conn != nil {
				n.conn.Close()
			}
			for id, t := range n.inflight {
				delete(n.inflight, id)
				c.failLocked(t, errClosed)
			}
			for _, t := range n.queue {
				c.failLocked(t, errClosed)
			}
			n.queue = nil
		}
		c.cond.Broadcast()
		c.mu.Unlock()
	})
	c.wg.Wait()
}

// nodeLoop is one node's connection lifecycle: dial, handshake, serve until
// death, classify, backoff, reconnect — until the coordinator closes or the
// node's breaker opens.
func (c *Coordinator) nodeLoop(n *node) {
	defer c.wg.Done()
	restarts := 0
	for {
		select {
		case <-c.closed:
			return
		default:
		}
		c.mu.Lock()
		down := n.down
		c.mu.Unlock()
		if down {
			return
		}
		if restarts > 0 && !sleepClosed(c.closed, reconnectBackoff(n.idx, restarts)) {
			return
		}
		conn, br, hello, ce := c.dial(n)
		if ce != nil {
			restarts++
			c.nodeFailed(n, nil, ce)
			continue
		}
		gen, ok := c.install(n, conn, hello)
		if !ok {
			conn.Close()
			return
		}
		restarts = 1 // a fresh connection restarts the backoff schedule
		c.wg.Add(1)
		go c.sender(n, gen)
		kind, err := c.readLoop(n, conn, br)
		if c.nodeDeparted(n, conn) {
			return
		}
		c.nodeFailed(n, conn, &supervisor.CrashError{Kind: kind, Detail: err.Error()})
	}
}

// dial connects and consumes the node's handshake. Network failures here
// classify as CrashSpawn (the node never completed the handshake, the
// pipe-transport meaning of spawn); a handshake that parses wrong — bad
// version, wrong frame — is CrashProtocol.
func (c *Coordinator) dial(n *node) (net.Conn, *bufio.Reader, pointproto.NodeHello, *supervisor.CrashError) {
	fail := func(kind supervisor.CrashKind, err error) (net.Conn, *bufio.Reader, pointproto.NodeHello, *supervisor.CrashError) {
		return nil, nil, pointproto.NodeHello{}, &supervisor.CrashError{Kind: kind, Detail: err.Error()}
	}
	conn, err := net.DialTimeout("tcp", n.addr, c.cfg.DialTimeout)
	if err != nil {
		return fail(supervisor.CrashSpawn, err)
	}
	br := bufio.NewReader(conn)
	conn.SetReadDeadline(time.Now().Add(c.cfg.HeartbeatTimeout))
	typ, payload, err := pointproto.ReadFrame(br)
	if err != nil {
		conn.Close()
		return fail(supervisor.CrashSpawn, fmt.Errorf("handshake: %w", err))
	}
	if typ != pointproto.MsgNodeHello {
		conn.Close()
		return fail(supervisor.CrashProtocol, fmt.Errorf("handshake: unexpected %s frame", typ))
	}
	hello, err := pointproto.UnmarshalNodeHello(payload)
	if err != nil {
		conn.Close()
		return fail(supervisor.CrashProtocol, fmt.Errorf("handshake: %w", err))
	}
	if hello.Version != pointproto.Version {
		conn.Close()
		return fail(supervisor.CrashProtocol,
			fmt.Errorf("handshake: node speaks protocol %d, coordinator %d", hello.Version, pointproto.Version))
	}
	return conn, br, hello, nil
}

// install publishes a live connection: bumps the generation (stopping any
// prior sender), records capacity and identity, and wakes the scheduler.
func (c *Coordinator) install(n *node, conn net.Conn, hello pointproto.NodeHello) (uint64, bool) {
	c.mu.Lock()
	if c.shut || n.down {
		c.mu.Unlock()
		return 0, false
	}
	n.gen++
	gen := n.gen
	n.conn = conn
	n.up = true
	if hello.Name != "" {
		n.name = hello.Name
	}
	n.capacity = int(hello.Capacity)
	if n.capacity < 1 {
		n.capacity = 1
	}
	c.cfg.Metrics.Gauge("fleet.nodes.up").Add(1)
	c.cond.Broadcast()
	c.mu.Unlock()
	c.event(n, "up", fmt.Sprintf("pid=%d capacity=%d goos=%s goarch=%s cpu=%q go=%s gomaxprocs=%d numcpu=%d",
		hello.PID, hello.Capacity, hello.GOOS, hello.GOARCH, hello.CPU, hello.GoVersion, hello.GOMAXPROCS, hello.NumCPU))
	return gen, true
}

// sender drains the node's queue (stealing when it runs dry) onto the
// connection, capped at the node's declared capacity. It exits when the
// connection's generation is superseded, the node goes down, or a write
// fails (closing the connection so the reader classifies the death).
func (c *Coordinator) sender(n *node, gen uint64) {
	defer c.wg.Done()
	for {
		c.mu.Lock()
		var t *task
		for {
			if c.shut || n.gen != gen || n.down {
				c.mu.Unlock()
				return
			}
			if len(n.inflight) < n.capacity {
				if t = c.takeWorkLocked(n); t != nil {
					break
				}
			}
			c.cond.Wait()
		}
		id := n.nextID
		n.nextID++
		n.inflight[id] = t
		t.owner = n
		conn := n.conn
		c.mu.Unlock()
		conn.SetWriteDeadline(time.Now().Add(c.cfg.HeartbeatTimeout))
		frame := pointproto.MarshalTask(pointproto.Task{ID: id, Spec: t.spec})
		if err := pointproto.WriteFrame(conn, pointproto.MsgTask, frame); err != nil {
			conn.Close() // the reader unblocks, classifies, and requeues
			return
		}
	}
}

// readLoop consumes frames until the connection dies, applying the
// heartbeat watchdog as a per-frame read deadline. It returns the death's
// classification: deadline → partition, closed/reset → disconnect,
// unparseable bytes → protocol.
func (c *Coordinator) readLoop(n *node, conn net.Conn, br *bufio.Reader) (supervisor.CrashKind, error) {
	for {
		conn.SetReadDeadline(time.Now().Add(c.cfg.HeartbeatTimeout))
		typ, payload, err := pointproto.ReadFrame(br)
		if err != nil {
			return classifyReadErr(err), err
		}
		switch typ {
		case pointproto.MsgHeartbeat:
		case pointproto.MsgTaskResult:
			res, err := pointproto.UnmarshalTaskResult(payload)
			if err != nil {
				return supervisor.CrashProtocol, err
			}
			c.complete(n, res)
		case pointproto.MsgNodeGoodbye:
			// Graceful drain announcement: the node has answered every
			// task it accepted and will close the connection next. Stop
			// assigning it work now; the EOF that follows is a clean
			// departure, not a disconnect crash.
			c.nodeDraining(n)
		default:
			return supervisor.CrashProtocol, fmt.Errorf("fleet: unexpected %s frame", typ)
		}
	}
}

// complete resolves the inflight task a result answers. A result whose ID
// is no longer inflight (the task timed out, or was requeued after this
// node's earlier death) is an orphan: counted and dropped, never applied —
// the requeued execution's result is the one that binds.
func (c *Coordinator) complete(n *node, res pointproto.TaskResult) {
	c.mu.Lock()
	t, ok := n.inflight[res.ID]
	if !ok {
		c.cfg.Metrics.Counter("fleet.orphans").Inc()
		c.mu.Unlock()
		return
	}
	delete(n.inflight, res.ID)
	t.out = outcome{payload: res.Payload}
	c.completed[t.key] = res.Payload
	delete(c.tasks, t.key)
	n.breaker.Record(false)
	c.cfg.Metrics.Counter("fleet.points").Inc()
	c.cfg.Metrics.Counter(fmt.Sprintf("fleet.node.%d.points", n.idx)).Inc()
	close(t.done)
	c.cond.Broadcast()
	c.mu.Unlock()
}

// nodeFailed handles one connection death: classify into metrics, feed the
// breaker, requeue the node's work, and mark the node permanently down if
// the breaker opened. Inflight tasks requeue exactly once — a task whose
// second node also dies fails with that death's CrashError. Queued-but-
// unsent tasks migrate freely; the crash never touched them.
func (c *Coordinator) nodeFailed(n *node, conn net.Conn, ce *supervisor.CrashError) {
	if conn != nil {
		conn.Close()
	}
	c.mu.Lock()
	if c.shut {
		n.up = false
		n.gen++
		n.conn = nil
		c.mu.Unlock()
		return
	}
	if n.up {
		c.cfg.Metrics.Gauge("fleet.nodes.up").Add(-1)
	}
	n.up = false
	n.gen++
	n.conn = nil
	c.lastCrash = ce
	c.cfg.Metrics.Counter("fleet.crashes." + ce.Kind.String()).Inc()
	tripped := n.breaker.Record(true)
	if tripped {
		n.down = true
		c.cfg.Metrics.Counter("fleet.breakers.opened").Inc()
	}
	var requeue []*task
	for id, t := range n.inflight {
		delete(n.inflight, id)
		if t.requeued {
			c.failLocked(t, ce)
			continue
		}
		t.requeued = true
		c.cfg.Metrics.Counter("fleet.requeues").Inc()
		requeue = append(requeue, t)
	}
	// The inflight map's iteration order is random; sort so requeue
	// placement is deterministic.
	sort.Slice(requeue, func(i, j int) bool { return requeue[i].key < requeue[j].key })
	migrate := n.queue
	n.queue = nil
	for _, t := range requeue {
		c.enqueueLocked(t, n)
	}
	for _, t := range migrate {
		c.enqueueLocked(t, n)
	}
	c.cond.Broadcast()
	c.mu.Unlock()
	c.event(n, "down", ce.Error())
	if tripped {
		c.event(n, "breaker-open", fmt.Sprintf("%d consecutive deaths; node is down for the run", c.cfg.BreakerThreshold))
	}
}

// nodeDraining handles a node's MsgNodeGoodbye: the node finished its
// in-flight work and is leaving deliberately. The node is retired from
// placement (down, no reconnect) and its queued-but-unsent tasks migrate
// to the rest of the fleet — with no crash counters, no breaker feed, and
// no requeue accounting, because nothing crashed and nothing started.
func (c *Coordinator) nodeDraining(n *node) {
	c.mu.Lock()
	if c.shut || n.draining {
		c.mu.Unlock()
		return
	}
	n.draining = true
	n.down = true // no new placement; the sender goroutine unwinds
	migrate := n.queue
	n.queue = nil
	for _, t := range migrate {
		c.enqueueLocked(t, n)
	}
	if len(migrate) > 0 {
		c.cfg.Metrics.Counter("fleet.drain.migrated").Add(int64(len(migrate)))
	}
	c.cond.Broadcast()
	c.mu.Unlock()
	c.event(n, "draining", fmt.Sprintf("goodbye received; %d queued task(s) migrated", len(migrate)))
}

// nodeDeparted finishes a drained node's lifecycle once its connection
// unwinds: reports true (and cleans up without any crash accounting) when
// the node had announced drain, false to let nodeFailed classify a real
// death. In the clean sequence nothing is left inflight — the node answers
// every accepted task before its goodbye — but a straggler assigned in the
// race window migrates like queued work, again without crash counters.
func (c *Coordinator) nodeDeparted(n *node, conn net.Conn) bool {
	c.mu.Lock()
	if !n.draining {
		c.mu.Unlock()
		return false
	}
	conn.Close()
	if n.up {
		c.cfg.Metrics.Gauge("fleet.nodes.up").Add(-1)
	}
	n.up = false
	n.gen++
	n.conn = nil
	var move []*task
	for id, t := range n.inflight {
		delete(n.inflight, id)
		move = append(move, t)
	}
	sort.Slice(move, func(i, j int) bool { return move[i].key < move[j].key })
	for _, t := range move {
		c.enqueueLocked(t, n)
	}
	if len(move) > 0 {
		c.cfg.Metrics.Counter("fleet.drain.migrated").Add(int64(len(move)))
	}
	c.cfg.Metrics.Counter("fleet.drains").Inc()
	c.cond.Broadcast()
	c.mu.Unlock()
	c.event(n, "drained", "clean departure: in-flight work answered, connection closed")
	return true
}

// failLocked resolves a task with a terminal error. Failures are not
// memoized: the key leaves the pending map so a caller may retry.
func (c *Coordinator) failLocked(t *task, err error) {
	select {
	case <-t.done:
		return
	default:
	}
	t.out = outcome{err: err}
	delete(c.tasks, t.key)
	c.cfg.Metrics.Counter("fleet.failures").Inc()
	close(t.done)
}

// event reports a node lifecycle transition to the log and the observer.
func (c *Coordinator) event(n *node, event, detail string) {
	c.mu.Lock()
	name := n.name
	c.mu.Unlock()
	if c.cfg.Stderr != nil {
		fmt.Fprintf(c.cfg.Stderr, "fleet: node %s %s: %s\n", name, event, detail)
	}
	if c.cfg.OnNodeEvent != nil {
		c.cfg.OnNodeEvent(name, event, detail)
	}
}

// classifyReadErr reduces a connection read failure to a crash kind: a
// deadline (nothing heard within the heartbeat budget) is a partition, a
// closed or reset connection is a disconnect, and a live connection
// delivering unparseable bytes is a protocol violation.
func classifyReadErr(err error) supervisor.CrashKind {
	var ne net.Error
	if (errors.As(err, &ne) && ne.Timeout()) || errors.Is(err, os.ErrDeadlineExceeded) {
		return supervisor.CrashPartition
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed) || errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EPIPE) {
		return supervisor.CrashDisconnect
	}
	var oe *net.OpError
	if errors.As(err, &oe) {
		return supervisor.CrashDisconnect
	}
	return supervisor.CrashProtocol
}

// reconnectBackoff returns reconnect n's delay: base<<n capped, scaled by
// a deterministic jitter in [0.5, 1.5) hashed from (node, attempt) —
// the supervisor's restart schedule, transplanted.
func reconnectBackoff(nodeIdx, attempt int) time.Duration {
	d := reconnectBackoffBase << uint(attempt-1)
	if d > reconnectBackoffMax || d <= 0 {
		d = reconnectBackoffMax
	}
	h := uint64(14695981039346656037)
	h = (h ^ uint64(nodeIdx)) * 1099511628211
	h = (h ^ uint64(attempt)) * 1099511628211
	jitter := 0.5 + float64(h>>11)/float64(1<<53)
	return time.Duration(float64(d) * jitter)
}

// sleepClosed sleeps d, returning false early if closed closes.
func sleepClosed(closed <-chan struct{}, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-closed:
		return false
	}
}
