package fleet

import (
	"fmt"
	"hash/fnv"

	"jvmpower/internal/supervisor"
)

// Scheduling. Placement is shard-affine: a shard key (the experiments layer
// uses figure|sweep-group) hashes to a preferred node, so a figure's heap
// sweep lands together and shares that node's sweep-fork memo locality.
// Affinity is advisory, not binding — an idle node steals from the longest
// queue, taking the shard-coherent batch at its tail (figure granularity)
// and degrading to single points as queues run shallow (point granularity
// under skew). All functions here run under Coordinator.mu.

// enqueueLocked places a task. Initial placement (exclude nil) is
// shard-affine; requeues and migrations go to the least-loaded node other
// than the dead one, falling back to the dead node's own queue when it is
// the only one left and may reconnect. With every node permanently down
// the task fails immediately — there is nothing to wait for.
func (c *Coordinator) enqueueLocked(t *task, exclude *node) bool {
	var target *node
	if exclude == nil {
		target = c.preferredLocked(t.shard)
	} else {
		target = c.leastLoadedLocked(exclude)
		if target == nil && !exclude.down {
			target = exclude
		}
	}
	if target == nil {
		err := error(&supervisor.CrashError{Kind: supervisor.CrashSpawn, Detail: "fleet: no nodes available"})
		if c.lastCrash != nil {
			err = fmt.Errorf("fleet: no nodes available (last crash: %w)", c.lastCrash)
		}
		c.failLocked(t, err)
		return false
	}
	t.owner = target
	target.queue = append(target.queue, t)
	return true
}

// preferredLocked hashes a shard to its affine node, walking forward past
// permanently-down nodes. Returns nil when the whole fleet is down.
func (c *Coordinator) preferredLocked(shard string) *node {
	if len(c.nodes) == 0 {
		return nil
	}
	h := fnv.New64a()
	h.Write([]byte(shard))
	start := int(h.Sum64() % uint64(len(c.nodes)))
	for j := 0; j < len(c.nodes); j++ {
		n := c.nodes[(start+j)%len(c.nodes)]
		if !n.down {
			return n
		}
	}
	return nil
}

// leastLoadedLocked returns the live node with the fewest queued+inflight
// tasks, excluding one; ties break on index for determinism.
func (c *Coordinator) leastLoadedLocked(exclude *node) *node {
	var best *node
	for _, n := range c.nodes {
		if n == exclude || n.down {
			continue
		}
		if best == nil || len(n.queue)+len(n.inflight) < len(best.queue)+len(best.inflight) {
			best = n
		}
	}
	return best
}

// takeWorkLocked returns the next task for a node: its own queue first,
// then a steal. A steal takes from the victim with the longest queue — the
// shard-coherent batch at the queue's tail (every trailing task sharing the
// tail's shard), capped at half the victim's queue, which is a single point
// when the victim runs shallow.
func (c *Coordinator) takeWorkLocked(n *node) *task {
	if len(n.queue) == 0 {
		c.stealLocked(n)
	}
	if len(n.queue) == 0 {
		return nil
	}
	t := n.queue[0]
	n.queue = n.queue[1:]
	return t
}

func (c *Coordinator) stealLocked(n *node) {
	var victim *node
	for _, v := range c.nodes {
		if v == n || len(v.queue) == 0 {
			continue
		}
		if victim == nil || len(v.queue) > len(victim.queue) {
			victim = v
		}
	}
	if victim == nil {
		return
	}
	q := victim.queue
	shard := q[len(q)-1].shard
	max := (len(q) + 1) / 2
	i := len(q) - 1
	for i > 0 && q[i-1].shard == shard && len(q)-(i-1) <= max {
		i--
	}
	batch := append([]*task(nil), q[i:]...)
	victim.queue = q[:i]
	for _, t := range batch {
		t.owner = n
	}
	n.queue = append(n.queue, batch...)
	c.cfg.Metrics.Counter("fleet.steals").Inc()
	c.cfg.Metrics.Counter("fleet.steals.points").Add(int64(len(batch)))
}

// removeLocked detaches a task from whichever queue or inflight map holds
// it (used by the task-timeout path, where the node is healthy but the
// point is not).
func (c *Coordinator) removeLocked(t *task) {
	n := t.owner
	if n == nil {
		return
	}
	for i, qt := range n.queue {
		if qt == t {
			n.queue = append(n.queue[:i], n.queue[i+1:]...)
			return
		}
	}
	for id, it := range n.inflight {
		if it == t {
			delete(n.inflight, id)
			c.cond.Broadcast() // capacity freed
			return
		}
	}
}
