package fleet

import (
	"context"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"jvmpower/internal/pointproto"
)

// startServeDrain runs an executor node whose graceful drain is armed and
// returns its address, the Serve error (readable after done closes), and a
// hard-stop func.
func startServeDrain(t *testing.T, cfg ServeConfig) (addr string, done chan struct{}, serveErr *error, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done = make(chan struct{})
	serveErr = new(error)
	go func() {
		defer close(done)
		*serveErr = Serve(ctx, ln, cfg)
	}()
	return ln.Addr().String(), done, serveErr, func() {
		cancel()
		<-done
	}
}

// TestGracefulDrainMidPoint drains a node while a point is computing: the
// point must still complete and deliver its result, Serve must return nil,
// and the coordinator must record a clean departure — zero crash counters,
// zero requeues, a "draining"/"drained" event pair.
func TestGracefulDrainMidPoint(t *testing.T) {
	check := leakCheck(t)
	started := make(chan struct{})
	release := make(chan struct{})
	drain := make(chan struct{})
	handler := func(s pointproto.Spec) []byte {
		close(started)
		<-release
		return []byte("result:" + s.Bench)
	}
	addr, done, serveErr, stop := startServeDrain(t, ServeConfig{
		Handler: handler, Capacity: 2, Drain: drain,
	})
	defer stop()

	var evMu sync.Mutex
	var events []string
	c := New(Config{
		Nodes: []string{addr},
		OnNodeEvent: func(node, event, detail string) {
			evMu.Lock()
			events = append(events, event)
			evMu.Unlock()
		},
	})
	defer c.Close()

	type res struct {
		payload []byte
		err     error
	}
	resC := make(chan res, 1)
	go func() {
		p, err := c.Run(context.Background(), "fig", "key-b1", pointproto.Spec{Bench: "b1"})
		resC <- res{p, err}
	}()
	<-started    // the point is in flight on the node
	close(drain) // SIGTERM equivalent: stop admissions, finish in-flight
	close(release)

	r := <-resC
	if r.err != nil {
		t.Fatalf("drained point failed: %v", r.err)
	}
	if string(r.payload) != "result:b1" {
		t.Fatalf("payload = %q", r.payload)
	}

	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after drain")
	}
	if *serveErr != nil {
		t.Fatalf("Serve returned %v after graceful drain, want nil", *serveErr)
	}

	// The coordinator's departure handling runs off its own read loop;
	// wait for it, then assert the departure was not accounted as any
	// kind of crash.
	waitCounter(t, c, "fleet.drains", 1)
	m := c.Metrics()
	for _, kind := range []string{"disconnect", "partition", "protocol", "spawn", "timeout"} {
		if v := m.Counter("fleet.crashes." + kind).Value(); v != 0 {
			t.Fatalf("fleet.crashes.%s = %d after graceful drain, want 0", kind, v)
		}
	}
	if v := m.Counter("fleet.requeues").Value(); v != 0 {
		t.Fatalf("fleet.requeues = %d after graceful drain, want 0", v)
	}

	evMu.Lock()
	joined := strings.Join(events, ",")
	evMu.Unlock()
	if !strings.Contains(joined, "draining") || !strings.Contains(joined, "drained") {
		t.Fatalf("node events = %q, want draining and drained", joined)
	}
	if strings.Contains(joined, "down") {
		t.Fatalf("node events = %q: a graceful drain must not record a down event", joined)
	}

	// The fleet is now empty: new work fails with a typed scheduling error
	// instead of hanging.
	if _, err := c.Run(context.Background(), "fig", "key-b2", pointproto.Spec{Bench: "b2"}); err == nil {
		t.Fatal("Run after the only node drained should fail")
	} else if !strings.Contains(err.Error(), "no nodes available") {
		t.Fatalf("post-drain Run error = %v, want no-nodes-available", err)
	}

	c.Close()
	stop()
	check()
}

// TestGracefulDrainIdle drains a node with nothing in flight: Serve exits
// nil promptly and the coordinator records a drain, not a crash.
func TestGracefulDrainIdle(t *testing.T) {
	check := leakCheck(t)
	drain := make(chan struct{})
	addr, done, serveErr, stop := startServeDrain(t, ServeConfig{
		Handler: echoHandler(0, nil), Capacity: 1, Drain: drain,
	})
	defer stop()
	c := New(Config{Nodes: []string{addr}})
	defer c.Close()

	// One round trip proves the connection is fully installed first.
	if _, err := c.Run(context.Background(), "fig", "key-b0", pointproto.Spec{Bench: "b0"}); err != nil {
		t.Fatal(err)
	}
	close(drain)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after idle drain")
	}
	if *serveErr != nil {
		t.Fatalf("Serve returned %v, want nil", *serveErr)
	}
	waitCounter(t, c, "fleet.drains", 1)
	if v := c.Metrics().Counter("fleet.crashes.disconnect").Value(); v != 0 {
		t.Fatalf("fleet.crashes.disconnect = %d, want 0", v)
	}
	c.Close()
	stop()
	check()
}
