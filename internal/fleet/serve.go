package fleet

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"jvmpower/internal/benchstat"
	"jvmpower/internal/pointproto"
)

// defaultHeartbeatInterval paces a node's liveness ticks; it must stay
// well under the coordinator's HeartbeatTimeout (default 5s).
const defaultHeartbeatInterval = 500 * time.Millisecond

// ServeConfig configures one executor node.
type ServeConfig struct {
	// Name identifies the node in coordinator logs and journal events.
	// Defaults to the listener address.
	Name string
	// Capacity is the node's concurrent-point budget, advertised in the
	// handshake; the coordinator keeps at most this many tasks in flight.
	// Defaults to GOMAXPROCS.
	Capacity int
	// Handler computes one point and returns its opaque result payload
	// (the experiments layer returns the same gob a pipe worker's
	// MsgResult carries, which is what keeps fleet runs byte-identical).
	Handler func(pointproto.Spec) []byte
	// HeartbeatInterval paces liveness ticks. Defaults to 500ms.
	HeartbeatInterval time.Duration
	// Stderr, when set, receives node-side log lines.
	Stderr io.Writer
	// Drain, when non-nil, arms graceful drain: once it closes, the node
	// stops accepting connections and tasks, finishes every in-flight
	// point (results are still delivered, heartbeats keep ticking so the
	// coordinator's watchdog stays fed), announces departure with a
	// MsgNodeGoodbye frame, and closes each connection cleanly — the
	// coordinator sees a drained node, not a disconnect crash. Serve then
	// returns nil. Context cancellation remains the hard-abort path.
	Drain <-chan struct{}
}

// Serve runs an executor node on a listener until ctx is cancelled: each
// accepted coordinator connection gets the NodeHello handshake (identity,
// capacity, benchstat-style environment capture), a heartbeat ticker, and
// a Task-frame read loop that computes points concurrently up to Capacity
// and answers with TaskResult frames in completion order. It returns after
// every connection has unwound — with nil when cfg.Drain triggered a
// graceful drain.
func Serve(ctx context.Context, ln net.Listener, cfg ServeConfig) error {
	if cfg.Capacity <= 0 {
		cfg.Capacity = runtime.GOMAXPROCS(0)
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = defaultHeartbeatInterval
	}
	if cfg.Name == "" {
		cfg.Name = ln.Addr().String()
	}
	var (
		mu       sync.Mutex
		conns    = make(map[net.Conn]struct{})
		wg       sync.WaitGroup
		draining atomic.Bool
	)
	closeAll := func() {
		ln.Close()
		mu.Lock()
		for conn := range conns {
			conn.Close()
		}
		mu.Unlock()
	}
	done := make(chan struct{})
	defer close(done)
	go func() {
		if cfg.Drain != nil {
			select {
			case <-cfg.Drain:
				// Stop accepting; live connections drain themselves (each
				// serveConn watches cfg.Drain). A later ctx cancellation
				// still hard-aborts a drain that wedges.
				draining.Store(true)
				ln.Close()
			case <-ctx.Done():
				closeAll()
				return
			case <-done:
				return
			}
		}
		select {
		case <-ctx.Done():
			closeAll()
		case <-done:
		}
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if draining.Load() && ctx.Err() == nil {
				wg.Wait() // every connection finishes its goodbye sequence
				logf(cfg, "fleet node %s: drained", cfg.Name)
				return nil
			}
			closeAll()
			wg.Wait()
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return err
		}
		mu.Lock()
		conns[conn] = struct{}{}
		mu.Unlock()
		wg.Add(1)
		go func() {
			defer wg.Done()
			serveConn(conn, cfg)
			mu.Lock()
			delete(conns, conn)
			mu.Unlock()
		}()
	}
}

// serveConn speaks the socket dialect on one coordinator connection.
func serveConn(conn net.Conn, cfg ServeConfig) {
	defer conn.Close()
	var wmu sync.Mutex
	send := func(t pointproto.MsgType, payload []byte) error {
		wmu.Lock()
		defer wmu.Unlock()
		return pointproto.WriteFrame(conn, t, payload)
	}

	env := benchstat.CaptureEnvironment(nil, "")
	hello := pointproto.NodeHello{
		Version:    pointproto.Version,
		Name:       cfg.Name,
		PID:        uint64(os.Getpid()),
		Capacity:   uint64(cfg.Capacity),
		GOOS:       env.GOOS,
		GOARCH:     env.GOARCH,
		CPU:        env.CPU,
		GoVersion:  env.GoVersion,
		GOMAXPROCS: uint64(env.GOMAXPROCS),
		NumCPU:     uint64(env.NumCPU),
	}
	if err := send(pointproto.MsgNodeHello, pointproto.MarshalNodeHello(hello)); err != nil {
		return
	}

	// Two groups with different lifetimes: tasks must all finish before the
	// goodbye frame (their results ride the same connection), while the
	// heartbeat and drain watcher keep running *through* that wait — a long
	// final point must not starve the coordinator's watchdog — and stop only
	// when the connection is done for good.
	stop := make(chan struct{})
	var aux, tasks sync.WaitGroup
	var draining atomic.Bool
	defer aux.Wait()
	defer close(stop)
	aux.Add(1)
	go func() {
		defer aux.Done()
		tick := time.NewTicker(cfg.HeartbeatInterval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				if err := send(pointproto.MsgHeartbeat, nil); err != nil {
					return
				}
			}
		}
	}()
	if cfg.Drain != nil {
		aux.Add(1)
		go func() {
			defer aux.Done()
			select {
			case <-cfg.Drain:
				draining.Store(true)
				// Unblock the read loop without touching the write half:
				// in-flight results and the goodbye still need the socket.
				if tc, ok := conn.(*net.TCPConn); ok {
					tc.CloseRead()
				} else {
					conn.SetReadDeadline(time.Now())
				}
			case <-stop:
			}
		}()
	}

	br := bufio.NewReader(conn)
	sem := make(chan struct{}, cfg.Capacity)
	for {
		typ, payload, err := pointproto.ReadFrame(br)
		if err != nil {
			if draining.Load() {
				// Drain epilogue: finish in-flight points (their TaskResult
				// frames are sent from the task goroutines), then announce
				// the deliberate departure so the coordinator's next EOF
				// reads as a drained node rather than a crash.
				tasks.Wait()
				_ = send(pointproto.MsgNodeGoodbye, nil)
			} else if err != io.EOF {
				logf(cfg, "fleet node %s: read: %v", cfg.Name, err)
			}
			tasks.Wait()
			return
		}
		if typ != pointproto.MsgTask {
			logf(cfg, "fleet node %s: unexpected %s frame", cfg.Name, typ)
			tasks.Wait()
			return
		}
		task, err := pointproto.UnmarshalTask(payload)
		if err != nil {
			logf(cfg, "fleet node %s: %v", cfg.Name, err)
			tasks.Wait()
			return
		}
		sem <- struct{}{} // backpressure: at most Capacity points computing
		tasks.Add(1)
		go func() {
			defer tasks.Done()
			defer func() { <-sem }()
			defer func() {
				// A panicking handler drops the connection: the
				// coordinator sees a disconnect and reschedules the
				// point, exactly as a pipe worker's death would.
				if r := recover(); r != nil {
					logf(cfg, "fleet node %s: point panic: %v", cfg.Name, r)
					conn.Close()
				}
			}()
			out := cfg.Handler(task.Spec)
			res := pointproto.MarshalTaskResult(pointproto.TaskResult{ID: task.ID, Payload: out})
			if err := send(pointproto.MsgTaskResult, res); err != nil {
				return
			}
		}()
	}
}

func logf(cfg ServeConfig, format string, args ...any) {
	if cfg.Stderr != nil {
		fmt.Fprintf(cfg.Stderr, format+"\n", args...)
	}
}
