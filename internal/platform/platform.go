// Package platform defines the two hardware platforms of the study
// (Section IV-B): the 1.6 GHz Pentium M development board ("P6") and the
// Intel DBPXA255 development board with a 400 MHz PXA255 XScale
// microcontroller. A Platform bundles the processor timing model, the
// processor and memory power models, the physical measurement chain
// parameters, the thermal assembly, and the sampling rates the paper used
// on each board.
package platform

import (
	"fmt"
	"time"

	"jvmpower/internal/cpu"
	"jvmpower/internal/power"
	"jvmpower/internal/thermal"
	"jvmpower/internal/units"
)

// Platform describes one measured board.
type Platform struct {
	Name string
	CPU  cpu.Config

	CPUPower power.CPUModel
	MemPower power.MemoryModel

	// Rail voltages and sense resistances for the measurement chains.
	CPURailVolts float64
	CPUSenseOhms float64
	MemRailVolts float64
	MemSenseOhms float64

	// DAQPeriod is the power sampling interval; HPMPeriod the OS timer
	// period driving performance sampling.
	DAQPeriod units.Duration
	HPMPeriod units.Duration

	// DVFS lists the processor's voltage/frequency operating points
	// (nominal first).
	DVFS power.DVFSCurve

	Thermal thermal.Model
}

// Validate checks the full platform description.
func (p Platform) Validate() error {
	if err := p.CPU.Validate(); err != nil {
		return err
	}
	if err := p.CPUPower.Validate(); err != nil {
		return err
	}
	if err := p.MemPower.Validate(); err != nil {
		return err
	}
	if err := p.Thermal.Validate(); err != nil {
		return err
	}
	if p.DAQPeriod <= 0 || p.HPMPeriod <= 0 {
		return fmt.Errorf("platform %q: non-positive sampling periods", p.Name)
	}
	if p.CPURailVolts <= 0 || p.MemRailVolts <= 0 || p.CPUSenseOhms <= 0 || p.MemSenseOhms <= 0 {
		return fmt.Errorf("platform %q: non-positive measurement-chain parameters", p.Name)
	}
	if err := p.DVFS.Validate(); err != nil {
		return err
	}
	return nil
}

// P6 returns the Pentium M development board: 1.6 GHz, 32 KB L1I/L1D,
// 1 MB on-die L2, 512 MB SDRAM, idle power ≈4.5 W (CPU) and ≈250 mW
// (memory), 40 µs DAQ sampling and a 1 ms OS timer (Sections IV-B/D/E).
func P6() Platform {
	l2 := cpu.CacheConfig{Size: 1 * units.MB, LineSize: 64, Ways: 8}
	return Platform{
		Name: "P6",
		CPU: cpu.Config{
			Name:    "PentiumM-1.6GHz",
			ClockHz: 1.6e9,
			BaseCPI: 0.55,
			IPCMax:  2.0,
			L1I:     cpu.CacheConfig{Size: 32 * units.KB, LineSize: 64, Ways: 8},
			L1D:     cpu.CacheConfig{Size: 32 * units.KB, LineSize: 64, Ways: 8},
			L2:      &l2,
			// ~10-cycle L2, ~125 ns memory; the Pentium M's out-of-order
			// window hides part of each miss and its prefetchers convert
			// a pattern's miss-level parallelism into overlap.
			L2HitCycles: 10,
			MemCycles:   200,
			MissOverlap: 0.30,
			MLPSupport:  1.0,
		},
		CPUPower: power.CPUModel{
			Idle:      4.5,
			ActiveMax: 15.5,
			UtilFloor: 0.30,
			IPCMax:    2.0,
		},
		MemPower: power.MemoryModel{
			Idle:            0.25,
			EnergyPerAccess: 42e-9, // J per DRAM burst
		},
		CPURailVolts: 1.34, // Pentium M Vcc
		CPUSenseOhms: 0.010,
		MemRailVolts: 2.5, // DDR rail
		MemSenseOhms: 0.020,
		DAQPeriod:    40 * time.Microsecond,
		HPMPeriod:    1 * time.Millisecond,
		DVFS:         power.PentiumMDVFS(),
		Thermal: thermal.Model{
			AmbientC:              24,
			ResistanceFanOnCPerW:  2.4, // ~60°C steady under mpegaudio load
			ResistanceFanOffCPerW: 5.6, // reaches the 99°C trip under load
			CapacitanceJPerC:      19,  // ~240 s ramp to trip, as in Fig. 1
			ThrottleTripC:         99,
			ThrottleReleaseC:      97,
			ThrottleDuty:          0.5,
		},
	}
}

// DBPXA255 returns the Intel DBPXA255 development board: a 400 MHz
// single-issue in-order XScale with 32 KB 32-way L1 caches, no L2, 64 MB
// SDRAM, idle power ≈70 mW (CPU) and ≈5 mW (memory), 40 µs DAQ sampling
// and a 10 ms OS timer.
func DBPXA255() Platform {
	return Platform{
		Name: "DBPXA255",
		CPU: cpu.Config{
			Name:    "PXA255-400MHz",
			ClockHz: 400e6,
			BaseCPI: 1.4,
			IPCMax:  1.0,
			L1I:     cpu.CacheConfig{Size: 32 * units.KB, LineSize: 32, Ways: 32},
			L1D:     cpu.CacheConfig{Size: 32 * units.KB, LineSize: 32, Ways: 32},
			L2:      nil,
			// No L2; ~120 ns SDRAM at 400 MHz. The single-issue in-order
			// core hides almost none of the miss latency and extracts
			// little miss-level parallelism.
			L2HitCycles: 0,
			MemCycles:   48,
			MissOverlap: 0.05,
			MLPSupport:  0.20,
		},
		CPUPower: power.CPUModel{
			Idle:      0.070,
			ActiveMax: 0.300,
			UtilFloor: 0.35,
			IPCMax:    1.0,
		},
		MemPower: power.MemoryModel{
			Idle:            0.005,
			EnergyPerAccess: 8e-9,
		},
		CPURailVolts: 1.3,
		CPUSenseOhms: 0.10,
		MemRailVolts: 3.3,
		MemSenseOhms: 0.10,
		DAQPeriod:    40 * time.Microsecond,
		HPMPeriod:    10 * time.Millisecond,
		// The PXA255 scales 400 -> 200 MHz (turbo/run modes).
		DVFS: power.DVFSCurve{Points: []power.OperatingPoint{
			{FreqScale: 1.0, Volts: 1.30},
			{FreqScale: 0.5, Volts: 1.00},
		}},
		Thermal: thermal.Model{
			// The XScale board runs fanless and never approaches a
			// thermal limit; the model exists for API uniformity.
			AmbientC:              24,
			ResistanceFanOnCPerW:  40,
			ResistanceFanOffCPerW: 40,
			CapacitanceJPerC:      4,
			ThrottleTripC:         125,
			ThrottleReleaseC:      120,
			ThrottleDuty:          0.5,
		},
	}
}

// ByName returns a platform by its name ("P6" or "DBPXA255").
func ByName(name string) (Platform, error) {
	switch name {
	case "P6":
		return P6(), nil
	case "DBPXA255":
		return DBPXA255(), nil
	default:
		return Platform{}, fmt.Errorf("platform: unknown platform %q", name)
	}
}
