package platform

import (
	"testing"

	"jvmpower/internal/units"
)

func TestBothPlatformsValidate(t *testing.T) {
	for _, p := range []Platform{P6(), DBPXA255()} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("P6")
	if err != nil || p.Name != "P6" {
		t.Fatalf("ByName(P6): %v %v", p.Name, err)
	}
	p, err = ByName("DBPXA255")
	if err != nil || p.Name != "DBPXA255" {
		t.Fatalf("ByName(DBPXA255): %v %v", p.Name, err)
	}
	if _, err := ByName("SPARC"); err == nil {
		t.Fatal("unknown platform accepted")
	}
}

// The paper's published platform facts (Sections IV-B and IV-D).
func TestP6MatchesPaper(t *testing.T) {
	p := P6()
	if p.CPU.ClockHz != 1.6e9 {
		t.Error("Pentium M runs at 1.6 GHz")
	}
	if p.CPU.L1I.Size != 32*units.KB || p.CPU.L1D.Size != 32*units.KB {
		t.Error("Pentium M has 32KB L1 caches")
	}
	if p.CPU.L2 == nil || p.CPU.L2.Size != 1*units.MB {
		t.Error("Pentium M has a 1MB on-die L2")
	}
	if p.CPUPower.Idle != 4.5 {
		t.Error("P6 idle processor power is ~4.5W")
	}
	if p.MemPower.Idle != 0.25 {
		t.Error("P6 idle memory power is ~250mW")
	}
	if p.DAQPeriod.Microseconds() != 40 {
		t.Error("DAQ samples every 40µs")
	}
	if p.HPMPeriod.Milliseconds() != 1 {
		t.Error("P6 OS timer runs at 1ms")
	}
	if p.Thermal.ThrottleTripC != 99 || p.Thermal.ThrottleDuty != 0.5 {
		t.Error("Pentium M throttles to 50% duty at 99°C")
	}
}

func TestPXA255MatchesPaper(t *testing.T) {
	p := DBPXA255()
	if p.CPU.ClockHz != 400e6 {
		t.Error("PXA255 runs at 400MHz")
	}
	if p.CPU.L2 != nil {
		t.Error("PXA255 has no L2")
	}
	if p.CPU.L1I.Ways != 32 || p.CPU.L1D.Ways != 32 {
		t.Error("PXA255 caches are 32-way")
	}
	if p.CPUPower.Idle != 0.070 {
		t.Error("PXA255 idle processor power is ~70mW")
	}
	if p.MemPower.Idle != 0.005 {
		t.Error("DBPXA255 idle memory power is ~5mW")
	}
	if p.HPMPeriod.Milliseconds() != 10 {
		t.Error("DBPXA255 OS timer runs at 10ms")
	}
}

// The platforms' relative character: the embedded core is far slower but
// two orders of magnitude lower power, and hides far less miss latency.
func TestPlatformContrast(t *testing.T) {
	p6, px := P6(), DBPXA255()
	if p6.CPU.ClockHz/px.CPU.ClockHz != 4 {
		t.Error("clock ratio should be 4x")
	}
	if float64(p6.CPUPower.Idle)/float64(px.CPUPower.Idle) < 50 {
		t.Error("idle power contrast should exceed 50x")
	}
	if px.CPU.MLPSupport >= p6.CPU.MLPSupport {
		t.Error("in-order XScale cannot exploit MLP like the Pentium M")
	}
	if px.CPU.MissOverlap >= p6.CPU.MissOverlap {
		t.Error("in-order XScale hides less miss latency")
	}
}
