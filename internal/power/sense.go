package power

import (
	"fmt"

	"jvmpower/internal/faultinject"
	"jvmpower/internal/units"
)

// SenseChannel models one physical measurement channel of the paper's
// setup: a precision resistor in series with a supply rail, whose voltage
// drop (proportional to current) is digitized by the DAQ's ADC alongside
// the rail voltage. P = V·I is then computed offline. The channel
// reproduces the measurement imperfections a real chain has — resistor
// tolerance, amplifier gain error, ADC quantization, and a small
// deterministic noise floor — so that the analysis layer demonstrably
// tolerates them, as the paper's does.
type SenseChannel struct {
	// Rail voltage of the supply being sensed.
	RailVolts float64
	// ResistorOhms is the nominal sense resistance; ResistorTolerance the
	// relative part error baked into this channel (e.g. ±0.1%).
	ResistorOhms      float64
	ResistorTolerance float64
	// GainError is the instrumentation amplifier's relative gain error.
	GainError float64
	// ADCBits and ADCFullScaleVolts define quantization of the sensed
	// drop voltage.
	ADCBits           int
	ADCFullScaleVolts float64
	// NoiseFloorWatts is the peak of a deterministic triangular dither
	// added to measurements, standing in for switching noise.
	NoiseFloorWatts float64

	seed uint64
	n    uint64

	// inj, when non-nil, injects Gain (per-run amplifier gain excursions)
	// and Drift (slowly accumulating multiplicative drift) faults. drift is
	// the accumulated relative drift so far.
	inj   *faultinject.Injector
	drift float64
}

// NewSenseChannel returns a channel with the paper-like defaults for the
// given rail: 12-bit DAQ, 0.1% resistor, 0.5% gain error.
func NewSenseChannel(railVolts, resistorOhms float64, seed uint64) *SenseChannel {
	return &SenseChannel{
		RailVolts:         railVolts,
		ResistorOhms:      resistorOhms,
		ResistorTolerance: 0.001,
		GainError:         0.005,
		ADCBits:           12,
		ADCFullScaleVolts: 1.0,
		NoiseFloorWatts:   0.004 * railVolts, // scales with the rail
		seed:              seed,
	}
}

// Validate checks the channel's parameters.
func (s *SenseChannel) Validate() error {
	if s.RailVolts <= 0 || s.ResistorOhms <= 0 {
		return fmt.Errorf("power: sense channel rail %vV resistor %vΩ", s.RailVolts, s.ResistorOhms)
	}
	if s.ADCBits < 1 || s.ADCBits > 24 || s.ADCFullScaleVolts <= 0 {
		return fmt.Errorf("power: sense channel ADC %d bits, %vV full scale", s.ADCBits, s.ADCFullScaleVolts)
	}
	return nil
}

// SetInjector installs a fault injector on the channel (nil disables
// injection; the measurement path is then byte-identical to a channel that
// never had one).
func (s *SenseChannel) SetInjector(inj *faultinject.Injector) { s.inj = inj }

// FullScalePower is the power reading reconstructed from a full-scale ADC
// conversion — what a saturated sample reports.
func (s *SenseChannel) FullScalePower() units.Power {
	return units.Power(s.ADCFullScaleVolts / s.ResistorOhms * s.RailVolts)
}

// faultGain returns the multiplicative fault factor for one acquisition
// run: accumulated drift plus any per-run gain excursion. Called once per
// run (Measure is a one-sample run), mirroring how real chain errors move
// slowly relative to the 40 µs sampling period.
func (s *SenseChannel) faultGain() float64 {
	if s.inj.Fire(faultinject.Drift) {
		s.drift += faultinject.DriftStep
	}
	g := 1 + s.drift
	if s.inj.Fire(faultinject.Gain) {
		g *= 1 + faultinject.GainMagnitude*(2*s.inj.Uniform()-1)
	}
	return g
}

// Measure converts true instantaneous power on the rail into the power the
// DAQ would record for it: I = P/V through the resistor, drop digitized,
// and P reconstructed.
func (s *SenseChannel) Measure(truePower units.Power) units.Power {
	if truePower < 0 {
		truePower = 0
	}
	current := float64(truePower) / s.RailVolts
	drop := current * s.ResistorOhms * (1 + s.ResistorTolerance) * (1 + s.GainError)
	if s.inj != nil {
		// Injected gain/drift faults perturb the analog chain, upstream of
		// the ADC, exactly where the physical errors live.
		drop *= s.faultGain()
	}

	// ADC quantization of the drop voltage.
	lsb := s.ADCFullScaleVolts / float64(int64(1)<<s.ADCBits)
	if drop > s.ADCFullScaleVolts {
		drop = s.ADCFullScaleVolts // channel saturates
	}
	quantized := float64(int64(drop/lsb+0.5)) * lsb

	measuredI := quantized / s.ResistorOhms
	p := measuredI * s.RailVolts

	// Deterministic triangular dither.
	p += s.NoiseFloorWatts * (s.next01() - 0.5)
	if p < 0 {
		p = 0
	}
	return units.Power(p)
}

// MeasureRun measures len(out) consecutive samples of the same constant
// true power, bit-identical to calling Measure once per sample: the
// resistor/ADC chain is deterministic for a fixed input, so its quantized
// reconstruction is computed once and only the per-sample dither advances
// the channel's noise state. This is the batch fast path the DAQ uses —
// it hoists the per-sample chain setup out of the sampling loop.
func (s *SenseChannel) MeasureRun(truePower units.Power, out []units.Power) {
	if truePower < 0 {
		truePower = 0
	}
	current := float64(truePower) / s.RailVolts
	drop := current * s.ResistorOhms * (1 + s.ResistorTolerance) * (1 + s.GainError)
	if s.inj != nil {
		drop *= s.faultGain()
	}
	lsb := s.ADCFullScaleVolts / float64(int64(1)<<s.ADCBits)
	if drop > s.ADCFullScaleVolts {
		drop = s.ADCFullScaleVolts
	}
	quantized := float64(int64(drop/lsb+0.5)) * lsb
	measuredI := quantized / s.ResistorOhms
	base := measuredI * s.RailVolts
	noise := s.NoiseFloorWatts
	for i := range out {
		p := base + noise*(s.next01()-0.5)
		if p < 0 {
			p = 0
		}
		out[i] = units.Power(p)
	}
}

func (s *SenseChannel) next01() float64 {
	s.n++
	x := s.seed + s.n*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}
