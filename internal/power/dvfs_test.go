package power

import (
	"math"
	"testing"
)

func TestPentiumMDVFSValid(t *testing.T) {
	c := PentiumMDVFS()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(c.Points) != 6 {
		t.Fatalf("SpeedStep table has %d points, want 6", len(c.Points))
	}
	if c.Points[0].FreqScale != 1.0 || c.Points[0].Volts != 1.484 {
		t.Fatal("nominal point wrong")
	}
}

func TestDVFSValidateRejects(t *testing.T) {
	bad := DVFSCurve{}
	if bad.Validate() == nil {
		t.Error("empty curve accepted")
	}
	bad = DVFSCurve{Points: []OperatingPoint{{FreqScale: 0.5, Volts: 1}}}
	if bad.Validate() == nil {
		t.Error("curve without nominal point accepted")
	}
	bad = DVFSCurve{Points: []OperatingPoint{
		{FreqScale: 1, Volts: 1.4}, {FreqScale: 1, Volts: 1.3},
	}}
	if bad.Validate() == nil {
		t.Error("non-descending curve accepted")
	}
}

func TestNearest(t *testing.T) {
	c := PentiumMDVFS()
	if got := c.Nearest(1.0); got.FreqScale != 1.0 {
		t.Fatalf("nearest(1.0) = %+v", got)
	}
	// Requesting 0.6 must round UP to the 0.625 point (never slower than
	// asked).
	if got := c.Nearest(0.6); got.FreqScale != 0.625 {
		t.Fatalf("nearest(0.6) = %+v", got)
	}
	// Below the lowest point: the lowest point.
	if got := c.Nearest(0.1); got.FreqScale != 0.375 {
		t.Fatalf("nearest(0.1) = %+v", got)
	}
}

func TestScaleFactors(t *testing.T) {
	c := PentiumMDVFS()
	dyn, stat := c.ScaleFactors(c.Points[0])
	if dyn != 1 || stat != 1 {
		t.Fatalf("nominal factors %v/%v", dyn, stat)
	}
	low := c.Points[len(c.Points)-1]
	dyn, stat = c.ScaleFactors(low)
	// 600 MHz at 0.956 V: dynamic = 0.375·(0.956/1.484)² ≈ 0.156.
	want := 0.375 * math.Pow(0.956/1.484, 2)
	if math.Abs(dyn-want) > 1e-9 {
		t.Fatalf("dynamic factor %v, want %v", dyn, want)
	}
	if stat >= 1 || stat <= 0 {
		t.Fatalf("static factor %v", stat)
	}
}

func TestPowerAtMonotone(t *testing.T) {
	c := PentiumMDVFS()
	m := CPUModel{Idle: 4.5, ActiveMax: 15.5, UtilFloor: 0.3, IPCMax: 2}
	// Power strictly decreases down the curve at fixed IPC.
	prev := math.Inf(1)
	for _, p := range c.Points {
		got := float64(m.PowerAt(0.8, c, p))
		if got >= prev {
			t.Fatalf("power %v not decreasing at point %+v", got, p)
		}
		prev = got
	}
	// PowerAt at the nominal point equals the plain model.
	if math.Abs(float64(m.PowerAt(0.8, c, c.Points[0]))-float64(m.Power(0.8))) > 1e-9 {
		t.Fatal("nominal PowerAt disagrees with Power")
	}
	// The lowest point saves superlinearly vs its frequency ratio.
	lo := c.Points[len(c.Points)-1]
	ratio := float64(m.PowerAt(0.8, c, lo)) / float64(m.Power(0.8))
	if ratio >= lo.FreqScale {
		t.Fatalf("power ratio %v not superlinear vs frequency ratio %v", ratio, lo.FreqScale)
	}
}
