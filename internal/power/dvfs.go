package power

import (
	"fmt"
	"sort"

	"jvmpower/internal/units"
)

// DVFS support: dynamic voltage and frequency scaling, the paper's first
// listed direction of future work (Section VII). The Pentium M is the
// canonical DVFS part of its era (Enhanced SpeedStep); its published
// operating points pair each frequency with a minimum stable voltage.
//
// Dynamic power scales as f·V² and static (leakage) power roughly as V², so
// running slower-and-lower trades performance for a superlinear power
// reduction — worthwhile on memory-bound phases whose time barely stretches.

// OperatingPoint is one DVFS step.
type OperatingPoint struct {
	// FreqScale is the clock relative to the nominal (1.0) point.
	FreqScale float64
	// Volts is the supply voltage at this point.
	Volts float64
}

// DVFSCurve is a set of operating points, nominal first.
type DVFSCurve struct {
	Points []OperatingPoint
}

// PentiumMDVFS returns the Pentium M 1.6 GHz part's operating points
// (Enhanced SpeedStep table): 1.6 GHz at 1.484 V down to 600 MHz at
// 0.956 V.
func PentiumMDVFS() DVFSCurve {
	return DVFSCurve{Points: []OperatingPoint{
		{FreqScale: 1.000, Volts: 1.484}, // 1.6 GHz
		{FreqScale: 0.875, Volts: 1.420}, // 1.4 GHz
		{FreqScale: 0.750, Volts: 1.276}, // 1.2 GHz
		{FreqScale: 0.625, Volts: 1.164}, // 1.0 GHz
		{FreqScale: 0.500, Volts: 1.036}, // 800 MHz
		{FreqScale: 0.375, Volts: 0.956}, // 600 MHz
	}}
}

// Validate checks the curve: non-empty, nominal point first, monotone.
func (c DVFSCurve) Validate() error {
	if len(c.Points) == 0 {
		return fmt.Errorf("power: empty DVFS curve")
	}
	if c.Points[0].FreqScale != 1.0 {
		return fmt.Errorf("power: DVFS curve must start at the nominal point (FreqScale 1.0)")
	}
	for i, p := range c.Points {
		if p.FreqScale <= 0 || p.FreqScale > 1 || p.Volts <= 0 {
			return fmt.Errorf("power: bad operating point %d: %+v", i, p)
		}
		if i > 0 && p.FreqScale >= c.Points[i-1].FreqScale {
			return fmt.Errorf("power: DVFS points must be sorted by descending frequency")
		}
	}
	return nil
}

// Nearest returns the lowest operating point whose frequency is at least
// freqScale (the governor's legal choice for a requested speed).
func (c DVFSCurve) Nearest(freqScale float64) OperatingPoint {
	pts := append([]OperatingPoint(nil), c.Points...)
	sort.Slice(pts, func(i, j int) bool { return pts[i].FreqScale < pts[j].FreqScale })
	for _, p := range pts {
		if p.FreqScale >= freqScale {
			return p
		}
	}
	return pts[len(pts)-1]
}

// ScaleFactors returns the dynamic- and static-power scale factors of an
// operating point relative to nominal: dynamic ∝ f·V², static ∝ V².
func (c DVFSCurve) ScaleFactors(p OperatingPoint) (dynamic, static float64) {
	v0 := c.Points[0].Volts
	vr := p.Volts / v0
	return p.FreqScale * vr * vr, vr * vr
}

// PowerAt returns processor power at the given IPC under an operating
// point: the idle (largely static) term scales with V², the activity term
// with f·V².
func (m CPUModel) PowerAt(ipc float64, curve DVFSCurve, p OperatingPoint) units.Power {
	dyn, stat := curve.ScaleFactors(p)
	u := m.UtilFloor + (1-m.UtilFloor)*ipc/m.IPCMax
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	return units.Power(float64(m.Idle)*stat + float64(m.ActiveMax)*u*dyn)
}
