package power

import (
	"math"
	"testing"

	"jvmpower/internal/units"
)

func testCPUModel() CPUModel {
	return CPUModel{Idle: 4.5, ActiveMax: 15.5, UtilFloor: 0.3, IPCMax: 2}
}

func TestCPUModelValidate(t *testing.T) {
	if err := testCPUModel().Validate(); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
	bad := testCPUModel()
	bad.ActiveMax = 0
	if bad.Validate() == nil {
		t.Error("zero ActiveMax accepted")
	}
	bad = testCPUModel()
	bad.UtilFloor = 1.5
	if bad.Validate() == nil {
		t.Error("UtilFloor > 1 accepted")
	}
}

func TestCPUPowerMonotonicInIPC(t *testing.T) {
	m := testCPUModel()
	prev := units.Power(0)
	for ipc := 0.0; ipc <= 2.0; ipc += 0.1 {
		p := m.Power(ipc)
		if p < prev {
			t.Fatalf("power decreased with IPC at %v", ipc)
		}
		prev = p
	}
	// Floor: even a fully-stalled core burns the utilization floor.
	if got := m.Power(0); math.Abs(float64(got)-(4.5+15.5*0.3)) > 1e-9 {
		t.Fatalf("stalled power %v", got)
	}
	// Ceiling: clamps at Idle+ActiveMax.
	if got := m.Power(10); math.Abs(float64(got)-(4.5+15.5)) > 1e-9 {
		t.Fatalf("saturated power %v", got)
	}
	if m.IdlePower() != 4.5 {
		t.Fatal("idle power wrong")
	}
}

func TestMemoryModel(t *testing.T) {
	m := MemoryModel{Idle: 0.25, EnergyPerAccess: 40e-9}
	if err := m.Validate(); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
	p := m.Power(10e6) // 10M accesses/s
	want := 0.25 + 0.4
	if math.Abs(float64(p)-want) > 1e-12 {
		t.Fatalf("power %v, want %v", p, want)
	}
	e := m.Energy(1e6, units.Duration(1e9)) // 1M accesses over 1s
	wantE := 0.25 + 0.04
	if math.Abs(float64(e)-wantE) > 1e-9 {
		t.Fatalf("energy %v, want %v", e, wantE)
	}
	bad := MemoryModel{Idle: -1}
	if bad.Validate() == nil {
		t.Error("negative idle accepted")
	}
}

func TestSenseChannelAccuracy(t *testing.T) {
	ch := NewSenseChannel(1.34, 0.010, 99)
	if err := ch.Validate(); err != nil {
		t.Fatalf("default channel invalid: %v", err)
	}
	// The chain must reproduce true power within a few percent across the
	// measurement range (resistor tolerance + gain + quantization + dither).
	for _, truth := range []float64{1, 4.5, 12.8, 17.5} {
		sum, n := 0.0, 200
		for i := 0; i < n; i++ {
			sum += float64(ch.Measure(units.Power(truth)))
		}
		avg := sum / float64(n)
		if rel := math.Abs(avg-truth) / truth; rel > 0.03 {
			t.Errorf("measuring %v W: avg %v (%.1f%% error)", truth, avg, rel*100)
		}
	}
}

func TestSenseChannelDeterministic(t *testing.T) {
	a := NewSenseChannel(1.34, 0.010, 7)
	b := NewSenseChannel(1.34, 0.010, 7)
	for i := 0; i < 50; i++ {
		if a.Measure(12.5) != b.Measure(12.5) {
			t.Fatal("same-seed channels diverged")
		}
	}
}

func TestSenseChannelClampsNegative(t *testing.T) {
	ch := NewSenseChannel(1.34, 0.010, 1)
	if got := ch.Measure(-5); got < 0 {
		t.Fatalf("negative measurement %v", got)
	}
}

func TestSenseChannelSaturates(t *testing.T) {
	ch := NewSenseChannel(1.0, 1.0, 1) // 1Ω: 2 A would drop 2 V > 1 V full scale
	m := ch.Measure(2.0)
	if float64(m) > 1.1 {
		t.Fatalf("channel did not saturate: %v", m)
	}
}

func TestSenseChannelValidateRejects(t *testing.T) {
	ch := NewSenseChannel(1.34, 0.010, 1)
	ch.ADCBits = 0
	if ch.Validate() == nil {
		t.Error("0-bit ADC accepted")
	}
	ch = NewSenseChannel(0, 0.010, 1)
	if ch.Validate() == nil {
		t.Error("zero rail accepted")
	}
}
