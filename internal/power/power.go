// Package power implements the electrical side of the paper's methodology:
// activity-based power models for the processor and main memory, and the
// physical measurement chain — sense resistors in series with the supply
// rails, voltage sensing, and ADC quantization — through which the DAQ
// observes them (Section IV-D).
package power

import (
	"fmt"

	"jvmpower/internal/units"
)

// CPUModel maps core activity to processor power. The model follows the
// utilization correlation the paper cites (Section VI-C): a running core
// burns a floor of dynamic power in the clock tree and front end even when
// stalled, plus an IPC-proportional term. This is why the garbage
// collector — stalled on L2 misses much of the time, IPC ≈ 0.55 — measures
// as the least power-hungry component while compute-dense application code
// at IPC ≈ 0.8+ sets the power peaks.
type CPUModel struct {
	// Idle is the measured idle power (4.5 W for the P6 board's Pentium M,
	// ~70 mW for the PXA255).
	Idle units.Power
	// ActiveMax is the additional power at sustained peak IPC.
	ActiveMax units.Power
	// UtilFloor is the fraction of ActiveMax burned whenever the core is
	// executing at all, regardless of IPC.
	UtilFloor float64
	// IPCMax normalizes IPC into utilization.
	IPCMax float64
}

// Validate checks the model's parameters.
func (m CPUModel) Validate() error {
	if m.Idle < 0 || m.ActiveMax <= 0 || m.IPCMax <= 0 {
		return fmt.Errorf("power: CPU model has non-positive parameters: %+v", m)
	}
	if m.UtilFloor < 0 || m.UtilFloor > 1 {
		return fmt.Errorf("power: CPU model UtilFloor %v out of [0,1]", m.UtilFloor)
	}
	return nil
}

// Power returns instantaneous processor power at the given IPC.
func (m CPUModel) Power(ipc float64) units.Power {
	u := m.UtilFloor + (1-m.UtilFloor)*ipc/m.IPCMax
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	return m.Idle + units.Power(float64(m.ActiveMax)*u)
}

// IdlePower returns power when nothing is scheduled.
func (m CPUModel) IdlePower() units.Power { return m.Idle }

// MemoryModel maps DRAM activity to main-memory power: a standby term plus
// per-access energy.
type MemoryModel struct {
	// Idle is standby/refresh power (≈250 mW for the P6 board's SDRAM,
	// ≈5 mW for the DBPXA255).
	Idle units.Power
	// EnergyPerAccess is the energy of one DRAM burst (row activate +
	// transfer + precharge).
	EnergyPerAccess units.Energy
}

// Validate checks the model's parameters.
func (m MemoryModel) Validate() error {
	if m.Idle < 0 || m.EnergyPerAccess < 0 {
		return fmt.Errorf("power: memory model has negative parameters: %+v", m)
	}
	return nil
}

// Power returns instantaneous memory power at the given access rate.
func (m MemoryModel) Power(accessesPerSecond float64) units.Power {
	return m.Idle + units.Power(float64(m.EnergyPerAccess)*accessesPerSecond)
}

// Energy returns the memory energy of n accesses over duration d.
func (m MemoryModel) Energy(n int64, d units.Duration) units.Energy {
	return m.Idle.For(d) + m.EnergyPerAccess.Times(float64(n))
}
