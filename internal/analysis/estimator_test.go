package analysis

import (
	"math"
	"testing"
	"testing/quick"
)

// synth generates samples from a known linear law plus deterministic
// dither.
func synth(c0, c1, c2 float64, n int) []PowerSample {
	var out []PowerSample
	seed := uint64(12345)
	next := func() float64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return float64(seed>>11) / float64(1<<53)
	}
	for i := 0; i < n; i++ {
		ipc := 0.2 + 1.6*next()
		miss := 20 * next()
		noise := (next() - 0.5) * 0.05
		out = append(out, PowerSample{
			IPC: ipc, MissPerKInst: miss,
			Watts: c0 + c1*ipc + c2*miss + noise,
		})
	}
	return out
}

func TestFitRecoversCoefficients(t *testing.T) {
	m, err := FitPowerModel(synth(5.0, 10.0, -0.2, 500))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.C0-5.0) > 0.1 || math.Abs(m.C1-10.0) > 0.1 || math.Abs(m.C2+0.2) > 0.02 {
		t.Fatalf("coefficients %.3f %.3f %.3f, want 5 10 -0.2", m.C0, m.C1, m.C2)
	}
	if m.RMSE > 0.05 {
		t.Fatalf("RMSE %v too high for near-noiseless data", m.RMSE)
	}
	if m.N != 500 {
		t.Fatalf("N = %d", m.N)
	}
}

func TestFitExactOnNoiselessData(t *testing.T) {
	samples := []PowerSample{
		{IPC: 0.5, MissPerKInst: 2, Watts: 4 + 8*0.5 - 0.1*2},
		{IPC: 1.0, MissPerKInst: 0, Watts: 4 + 8*1.0},
		{IPC: 1.5, MissPerKInst: 10, Watts: 4 + 8*1.5 - 0.1*10},
		{IPC: 0.8, MissPerKInst: 5, Watts: 4 + 8*0.8 - 0.1*5},
	}
	m, err := FitPowerModel(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.C0-4) > 1e-9 || math.Abs(m.C1-8) > 1e-9 || math.Abs(m.C2+0.1) > 1e-9 {
		t.Fatalf("exact fit failed: %.6f %.6f %.6f", m.C0, m.C1, m.C2)
	}
	if m.RMSE > 1e-9 {
		t.Fatalf("nonzero residual on exact data: %v", m.RMSE)
	}
}

func TestFitRejectsDegenerate(t *testing.T) {
	if _, err := FitPowerModel(nil); err == nil {
		t.Error("empty sample set accepted")
	}
	if _, err := FitPowerModel(synth(1, 1, 1, 2)); err == nil {
		t.Error("two samples accepted")
	}
	// Singular design: all samples identical.
	same := []PowerSample{{1, 1, 10}, {1, 1, 10}, {1, 1, 10}, {1, 1, 10}}
	if _, err := FitPowerModel(same); err == nil {
		t.Error("singular design accepted")
	}
}

// Property: for samples generated from any linear law, the fit predicts
// in-sample points to within numerical tolerance.
func TestFitPropertyLinearLaw(t *testing.T) {
	f := func(c0, c1, c2 float64) bool {
		c0 = math.Mod(c0, 20)
		c1 = math.Mod(c1, 20)
		c2 = math.Mod(c2, 2)
		samples := synth(c0, c1, c2, 60)
		m, err := FitPowerModel(samples)
		if err != nil {
			return false
		}
		for _, s := range samples {
			if math.Abs(m.Predict(s.IPC, s.MissPerKInst)-s.Watts) > 0.2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
