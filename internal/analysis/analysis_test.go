package analysis

import (
	"math"
	"strings"
	"testing"
	"time"

	"jvmpower/internal/component"
	"jvmpower/internal/daq"
	"jvmpower/internal/units"
)

func TestAggregator(t *testing.T) {
	period := 40 * time.Microsecond
	a := NewAggregator(period)
	for i := 0; i < 100; i++ {
		a.Sample(daq.Sample{Time: time.Duration(i) * period, CPU: 12, Mem: 0.5, Component: component.GC})
	}
	for i := 0; i < 50; i++ {
		a.Sample(daq.Sample{CPU: 14, Mem: 0.6, Component: component.App})
	}
	a.Sample(daq.Sample{CPU: 17, Mem: 0.6, Component: component.App}) // peak

	if a.Samples(component.GC) != 100 || a.Samples(component.App) != 51 {
		t.Fatalf("sample counts %d/%d", a.Samples(component.GC), a.Samples(component.App))
	}
	wantGC := 12.0 * 100 * period.Seconds()
	if got := float64(a.CPUEnergy(component.GC)); math.Abs(got-wantGC) > 1e-12 {
		t.Fatalf("GC energy %v, want %v", got, wantGC)
	}
	if got := a.AvgPower(component.GC); got != 12 {
		t.Fatalf("GC avg power %v", got)
	}
	if got := a.PeakPower(component.App); got != 17 {
		t.Fatalf("App peak %v", got)
	}
	if got := a.Time(component.GC); got != 100*period {
		t.Fatalf("GC time %v", got)
	}
	if a.AvgPower(component.ClassLoader) != 0 {
		t.Fatal("untouched component should report zero")
	}
}

func TestAggregatorPanicsOnBadPeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewAggregator(0)
}

func buildTestDecomposition(t *testing.T) Decomposition {
	t.Helper()
	period := time.Millisecond
	a := NewAggregator(period)
	add := func(id component.ID, n int, p units.Power) {
		for i := 0; i < n; i++ {
			a.Sample(daq.Sample{CPU: p, Mem: 0.5, Component: id})
		}
	}
	add(component.App, 600, 14)
	add(component.GC, 300, 12)
	add(component.ClassLoader, 50, 12.5)
	add(component.OptCompiler, 30, 13.5)
	add(component.BaseCompiler, 10, 13.8)
	add(component.Idle, 100, 4.5) // excluded from totals
	return Build("bench", "JikesRVM", "SemiSpace", "P6", 32, a, nil)
}

func TestBuildTotals(t *testing.T) {
	d := buildTestDecomposition(t)
	var sum units.Energy
	for id := component.ID(0); id < component.N; id++ {
		if id != component.Idle {
			sum += d.CPUEnergy[id]
		}
	}
	if math.Abs(float64(d.TotalCPUEnergy-sum)) > 1e-12 {
		t.Fatal("total CPU energy != component sum")
	}
	if d.TotalTime != 990*time.Millisecond {
		t.Fatalf("total time %v (idle must be excluded)", d.TotalTime)
	}
	if d.TotalEnergy != d.TotalCPUEnergy+d.TotalMemEnergy {
		t.Fatal("total energy mismatch")
	}
	wantEDP := float64(d.TotalEnergy) * d.TotalTime.Seconds()
	if math.Abs(float64(d.EDP)-wantEDP) > 1e-9 {
		t.Fatalf("EDP %v, want %v", d.EDP, wantEDP)
	}
}

func TestFractions(t *testing.T) {
	d := buildTestDecomposition(t)
	var total float64
	for id := component.ID(0); id < component.N; id++ {
		if id != component.Idle {
			total += d.CPUEnergyFrac(id)
		}
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("CPU energy fractions sum to %v", total)
	}
	jvm := d.JVMEnergyFrac()
	app := d.CPUEnergyFrac(component.App)
	if math.Abs(jvm+app-1) > 1e-9 {
		t.Fatalf("JVM (%v) + App (%v) != 1", jvm, app)
	}
	if d.MemEnergyFrac() <= 0 || d.MemEnergyFrac() >= 1 {
		t.Fatalf("memory fraction %v", d.MemEnergyFrac())
	}
	if d.TimeFrac(component.App) <= d.TimeFrac(component.GC) {
		t.Fatal("App ran twice as long as GC")
	}
}

func TestOverallPeak(t *testing.T) {
	d := buildTestDecomposition(t)
	p, who := d.OverallPeak()
	if who != component.App || p != 14 {
		t.Fatalf("peak %v in %v", p, who)
	}
}

func TestZeroDecomposition(t *testing.T) {
	a := NewAggregator(time.Millisecond)
	d := Build("empty", "Kaffe", "KaffeMS", "P6", 64, a, nil)
	if d.EnergyFrac(component.App) != 0 || d.JVMEnergyFrac() != 0 ||
		d.MemEnergyFrac() != 0 || d.TimeFrac(component.GC) != 0 {
		t.Fatal("zero run should report zero fractions, not NaN")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("A", "BBBB", "C")
	tb.AddRow("x", "y")
	tb.AddRow("longer", "z", "w")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "-") {
		t.Fatal("missing separator row")
	}
	// Columns align: header and rows start at the same offsets.
	if strings.Index(lines[0], "BBBB") != strings.Index(lines[2], "y") {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestPct(t *testing.T) {
	if Pct(0.374) != "37.4%" {
		t.Fatalf("Pct = %q", Pct(0.374))
	}
}
