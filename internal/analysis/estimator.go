package analysis

import (
	"fmt"
	"math"
)

// Runtime power estimation from performance counters — the paper's cited
// future-work direction [37] (Contreras & Martonosi, ISLPED'05: "Power
// Prediction for the Intel XScale Processor Using Hardware Performance
// Monitor Unit Events") and the event-driven accounting of Bellosa [30].
// A linear model over HPM-derived rates is fit against DAQ-measured power;
// once fit, the counters alone predict power without any sense resistors.

// PowerSample is one observation for the estimator: counter-derived rates
// and the measured power they coincided with.
type PowerSample struct {
	IPC          float64 // instructions per cycle
	MissPerKInst float64 // L2/memory misses per 1000 instructions
	Watts        float64
}

// PowerModel is the fitted linear estimator P ≈ C0 + C1·IPC + C2·misses.
type PowerModel struct {
	C0, C1, C2 float64
	// N is the number of observations fit; RMSE the root-mean-square
	// residual in Watts; MeanAbsPct the mean |error|/truth.
	N          int
	RMSE       float64
	MeanAbsPct float64
}

// FitPowerModel solves the least-squares problem over the samples via the
// 3×3 normal equations. It needs at least 3 observations with nonsingular
// design; otherwise it returns an error.
func FitPowerModel(samples []PowerSample) (PowerModel, error) {
	if len(samples) < 3 {
		return PowerModel{}, fmt.Errorf("analysis: need ≥3 samples to fit, have %d", len(samples))
	}
	// Accumulate X'X and X'y for X rows [1, ipc, miss].
	var xx [3][3]float64
	var xy [3]float64
	for _, s := range samples {
		row := [3]float64{1, s.IPC, s.MissPerKInst}
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				xx[i][j] += row[i] * row[j]
			}
			xy[i] += row[i] * s.Watts
		}
	}
	coef, err := solve3(xx, xy)
	if err != nil {
		return PowerModel{}, err
	}
	m := PowerModel{C0: coef[0], C1: coef[1], C2: coef[2], N: len(samples)}

	var sse, absPct float64
	for _, s := range samples {
		p := m.Predict(s.IPC, s.MissPerKInst)
		e := p - s.Watts
		sse += e * e
		if s.Watts != 0 {
			absPct += math.Abs(e) / s.Watts
		}
	}
	m.RMSE = math.Sqrt(sse / float64(len(samples)))
	m.MeanAbsPct = absPct / float64(len(samples))
	return m, nil
}

// Predict estimates power from counter rates.
func (m PowerModel) Predict(ipc, missPerKInst float64) float64 {
	return m.C0 + m.C1*ipc + m.C2*missPerKInst
}

// solve3 solves a 3×3 linear system by Gaussian elimination with partial
// pivoting.
func solve3(a [3][3]float64, b [3]float64) ([3]float64, error) {
	var x [3]float64
	// Augment.
	m := [3][4]float64{}
	for i := 0; i < 3; i++ {
		copy(m[i][:3], a[i][:])
		m[i][3] = b[i]
	}
	for col := 0; col < 3; col++ {
		// Pivot.
		p := col
		for r := col + 1; r < 3; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[p][col]) {
				p = r
			}
		}
		if math.Abs(m[p][col]) < 1e-12 {
			return x, fmt.Errorf("analysis: singular design matrix (column %d)", col)
		}
		m[col], m[p] = m[p], m[col]
		// Eliminate.
		for r := 0; r < 3; r++ {
			if r == col {
				continue
			}
			f := m[r][col] / m[col][col]
			for c := col; c < 4; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	for i := 0; i < 3; i++ {
		x[i] = m[i][3] / m[i][i]
	}
	return x, nil
}
