package analysis

import (
	"jvmpower/internal/component"
	"jvmpower/internal/daq"
	"jvmpower/internal/stats"
	"jvmpower/internal/units"
)

// DwellRecorder measures component dwell times — how long the component-ID
// port holds one value before switching — at the sampling resolution the
// DAQ sees them. Section IV-D justifies the 40 µs sampling window by
// "typical component duration [being] hundreds of micro-seconds on our P6
// system and milliseconds on our PXA255 system"; this recorder lets the
// reproduction check that claim against itself.
//
// It is a daq.Sink decorator: samples pass through to the wrapped sink.
type DwellRecorder struct {
	next   daq.BatchSink
	period units.Duration

	cur     component.ID
	curLen  int64
	started bool

	dwell [component.N]stats.Running
}

// NewDwellRecorder wraps next, measuring dwell at the given sampling
// period.
func NewDwellRecorder(next daq.Sink, period units.Duration) *DwellRecorder {
	return &DwellRecorder{next: daq.AsBatchSink(next), period: period}
}

// Sample implements daq.Sink.
func (d *DwellRecorder) Sample(s daq.Sample) {
	d.next.Sample(s)
	d.observe(s.Component)
}

// SampleBatch implements daq.BatchSink: the run passes through batched;
// dwell accounting still walks the samples (it is sequence-dependent).
func (d *DwellRecorder) SampleBatch(batch []daq.Sample) {
	d.next.SampleBatch(batch)
	for i := range batch {
		d.observe(batch[i].Component)
	}
}

func (d *DwellRecorder) observe(id component.ID) {
	if !d.started {
		d.cur, d.curLen, d.started = id, 1, true
		return
	}
	if id == d.cur {
		d.curLen++
		return
	}
	d.dwell[d.cur].Add(float64(d.curLen) * d.period.Seconds())
	d.cur, d.curLen = id, 1
}

// Flush closes the open dwell interval (call once at end of run).
func (d *DwellRecorder) Flush() {
	if d.started && d.curLen > 0 {
		d.dwell[d.cur].Add(float64(d.curLen) * d.period.Seconds())
		d.curLen = 0
	}
}

// Dwell returns the dwell statistics (seconds) for a component.
func (d *DwellRecorder) Dwell(id component.ID) stats.Running { return d.dwell[id] }
