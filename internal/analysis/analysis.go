// Package analysis implements the offline analysis stage of the paper's
// infrastructure (the right-hand block of Figure 4): DAQ power samples are
// aggregated per component, matched with HPM performance traces, and turned
// into the per-component energy/power/time decompositions, energy-delay
// products, and peak-power figures the evaluation section reports.
package analysis

import (
	"fmt"

	"jvmpower/internal/component"
	"jvmpower/internal/cpu"
	"jvmpower/internal/daq"
	"jvmpower/internal/hpm"
	"jvmpower/internal/units"
)

// Aggregator is a daq.Sink that aggregates samples per component online,
// so experiment-scale runs need not retain multi-million-sample traces.
type Aggregator struct {
	period units.Duration
	comp   [component.N]compAgg
}

type compAgg struct {
	samples int64
	cpuJ    float64
	memJ    float64
	sumCPUW float64
	peakCPU units.Power
}

// NewAggregator returns an aggregator for samples taken every period.
func NewAggregator(period units.Duration) *Aggregator {
	if period <= 0 {
		panic(fmt.Sprintf("analysis: aggregator period %v", period))
	}
	return &Aggregator{period: period}
}

// Sample implements daq.Sink: each sample contributes period×power of
// energy to the component latched at the sample instant.
func (a *Aggregator) Sample(s daq.Sample) {
	c := &a.comp[s.Component]
	c.samples++
	sec := a.period.Seconds()
	c.cpuJ += float64(s.CPU) * sec
	c.memJ += float64(s.Mem) * sec
	c.sumCPUW += float64(s.CPU)
	if s.CPU > c.peakCPU {
		c.peakCPU = s.CPU
	}
}

// SampleBatch implements daq.BatchSink. Accumulation order is the sample
// order, so the sums are bit-identical to per-sample delivery; only the
// per-sample dispatch and period conversion are hoisted out of the loop.
func (a *Aggregator) SampleBatch(batch []daq.Sample) {
	sec := a.period.Seconds()
	for i := range batch {
		s := &batch[i]
		c := &a.comp[s.Component]
		c.samples++
		c.cpuJ += float64(s.CPU) * sec
		c.memJ += float64(s.Mem) * sec
		c.sumCPUW += float64(s.CPU)
		if s.CPU > c.peakCPU {
			c.peakCPU = s.CPU
		}
	}
}

// Samples reports the sample count attributed to a component.
func (a *Aggregator) Samples(id component.ID) int64 { return a.comp[id].samples }

// CPUEnergy reports processor energy attributed to a component.
func (a *Aggregator) CPUEnergy(id component.ID) units.Energy { return units.Energy(a.comp[id].cpuJ) }

// MemEnergy reports memory energy attributed to a component.
func (a *Aggregator) MemEnergy(id component.ID) units.Energy { return units.Energy(a.comp[id].memJ) }

// AvgPower reports the mean sampled processor power of a component.
func (a *Aggregator) AvgPower(id component.ID) units.Power {
	c := a.comp[id]
	if c.samples == 0 {
		return 0
	}
	return units.Power(c.sumCPUW / float64(c.samples))
}

// PeakPower reports the highest processor power sample of a component.
func (a *Aggregator) PeakPower(id component.ID) units.Power { return a.comp[id].peakCPU }

// Time reports execution time attributed to a component (samples × period).
func (a *Aggregator) Time(id component.ID) units.Duration {
	return units.Duration(a.comp[id].samples) * a.period
}

// Decomposition is the complete per-run analysis result: everything the
// paper's figures report for one (benchmark, VM, collector, heap, platform)
// point.
type Decomposition struct {
	Benchmark string
	VM        string
	Collector string
	Platform  string
	HeapMB    int

	CPUEnergy [component.N]units.Energy
	MemEnergy [component.N]units.Energy
	Time      [component.N]units.Duration
	AvgPower  [component.N]units.Power
	PeakPower [component.N]units.Power
	Counters  [component.N]cpu.Counters

	TotalCPUEnergy units.Energy
	TotalMemEnergy units.Energy
	TotalEnergy    units.Energy
	TotalTime      units.Duration
	EDP            units.EDP
}

// Build assembles a decomposition from the power aggregation and the HPM
// sampler of one run. Idle samples (before/after the run) are excluded
// from totals, as the paper measures from benchmark start to completion.
func Build(benchmark, vmName, collector, platformName string, heapMB int,
	agg *Aggregator, perf *hpm.Sampler) Decomposition {

	d := Decomposition{
		Benchmark: benchmark,
		VM:        vmName,
		Collector: collector,
		Platform:  platformName,
		HeapMB:    heapMB,
	}
	for id := component.ID(0); id < component.N; id++ {
		d.CPUEnergy[id] = agg.CPUEnergy(id)
		d.MemEnergy[id] = agg.MemEnergy(id)
		d.Time[id] = agg.Time(id)
		d.AvgPower[id] = agg.AvgPower(id)
		d.PeakPower[id] = agg.PeakPower(id)
		if perf != nil {
			d.Counters[id] = perf.Counters(id)
		}
		if id == component.Idle {
			continue
		}
		d.TotalCPUEnergy += d.CPUEnergy[id]
		d.TotalMemEnergy += d.MemEnergy[id]
		d.TotalTime += d.Time[id]
	}
	d.TotalEnergy = d.TotalCPUEnergy + d.TotalMemEnergy
	d.EDP = units.EnergyDelay(d.TotalEnergy, d.TotalTime)
	return d
}

// EnergyFrac reports a component's share of total (CPU+mem) energy.
func (d *Decomposition) EnergyFrac(id component.ID) float64 {
	if d.TotalEnergy == 0 {
		return 0
	}
	return float64(d.CPUEnergy[id]+d.MemEnergy[id]) / float64(d.TotalEnergy)
}

// CPUEnergyFrac reports a component's share of processor energy — the
// quantity Figures 6, 9 and 11 plot.
func (d *Decomposition) CPUEnergyFrac(id component.ID) float64 {
	if d.TotalCPUEnergy == 0 {
		return 0
	}
	return float64(d.CPUEnergy[id]) / float64(d.TotalCPUEnergy)
}

// JVMEnergyFrac reports the virtual machine's share of processor energy:
// every monitored component except the application (the paper's "JVM
// energy", which reaches 60% for _213_javac at a 32 MB heap).
func (d *Decomposition) JVMEnergyFrac() float64 {
	if d.TotalCPUEnergy == 0 {
		return 0
	}
	var e units.Energy
	for _, id := range component.VMComponents() {
		e += d.CPUEnergy[id]
	}
	return float64(e) / float64(d.TotalCPUEnergy)
}

// MemEnergyFrac reports main memory's share of total energy (Section VI-B:
// ≈7% SpecJVM98, 5% DaCapo, 8% JGF).
func (d *Decomposition) MemEnergyFrac() float64 {
	if d.TotalEnergy == 0 {
		return 0
	}
	return float64(d.TotalMemEnergy) / float64(d.TotalEnergy)
}

// TimeFrac reports a component's share of execution time.
func (d *Decomposition) TimeFrac(id component.ID) float64 {
	if d.TotalTime == 0 {
		return 0
	}
	return float64(d.Time[id]) / float64(d.TotalTime)
}

// OverallPeak reports the highest power sample of the whole run and which
// component it occurred in (Figure 8's peak-power question: application or
// JVM service?).
func (d *Decomposition) OverallPeak() (units.Power, component.ID) {
	var best units.Power
	var who component.ID
	for id := component.ID(0); id < component.N; id++ {
		if id == component.Idle {
			continue
		}
		if d.PeakPower[id] > best {
			best = d.PeakPower[id]
			who = id
		}
	}
	return best, who
}

// IPC reports a component's measured IPC from its HPM counters.
func (d *Decomposition) IPC(id component.ID) float64 { return d.Counters[id].IPC() }

// L2MissRate reports a component's measured L2 miss rate from its HPM
// counters.
func (d *Decomposition) L2MissRate(id component.ID) float64 { return d.Counters[id].L2MissRate() }
