package analysis

import (
	"fmt"
	"io"
	"strings"
)

// Table is a minimal fixed-width text table writer used by the experiment
// harness to print the rows and series the paper's figures report.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	for len(cells) < len(t.header) {
		cells = append(cells, "")
	}
	t.rows = append(t.rows, cells)
}

// WriteTo renders the table.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var n int64
	line := func(cells []string) error {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for p := len(c); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		m, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		n += int64(m)
		return err
	}
	if err := line(t.header); err != nil {
		return n, err
	}
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := line(sep); err != nil {
		return n, err
	}
	for _, r := range t.rows {
		if err := line(r); err != nil {
			return n, err
		}
	}
	return n, nil
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_, _ = t.WriteTo(&b)
	return b.String()
}

// Pct formats a fraction as a percentage.
func Pct(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }
