package analysis

import (
	"testing"
	"time"

	"jvmpower/internal/component"
	"jvmpower/internal/daq"
)

func TestDwellRecorder(t *testing.T) {
	period := 40 * time.Microsecond
	under := NewAggregator(period)
	d := NewDwellRecorder(under, period)

	emit := func(id component.ID, n int) {
		for i := 0; i < n; i++ {
			d.Sample(daq.Sample{CPU: 10, Component: id})
		}
	}
	emit(component.App, 25) // 1 ms
	emit(component.GC, 5)   // 200 µs
	emit(component.App, 10) // 400 µs
	d.Flush()

	app := d.Dwell(component.App)
	if app.Count() != 2 {
		t.Fatalf("app dwell intervals = %d, want 2", app.Count())
	}
	if got := app.Max(); got != 25*period.Seconds() {
		t.Fatalf("app max dwell %v, want 1ms", got)
	}
	gc := d.Dwell(component.GC)
	if gc.Count() != 1 || gc.Mean() != 5*period.Seconds() {
		t.Fatalf("gc dwell %v × %d", gc.Mean(), gc.Count())
	}
	// Samples passed through to the wrapped sink.
	if under.Samples(component.App) != 35 || under.Samples(component.GC) != 5 {
		t.Fatal("decorator swallowed samples")
	}
}

func TestDwellFlushIdempotent(t *testing.T) {
	period := time.Millisecond
	d := NewDwellRecorder(NewAggregator(period), period)
	d.Sample(daq.Sample{Component: component.App})
	d.Flush()
	d.Flush()
	st := d.Dwell(component.App)
	if st.Count() != 1 {
		t.Fatal("double flush recorded twice")
	}
}

func TestDwellEmpty(t *testing.T) {
	d := NewDwellRecorder(NewAggregator(time.Millisecond), time.Millisecond)
	d.Flush()
	st := d.Dwell(component.App)
	if st.Count() != 0 {
		t.Fatal("phantom dwell interval")
	}
}
