package classloader

import (
	"testing"

	"jvmpower/internal/classfile"
	"jvmpower/internal/isa"
)

func chainProgram(t *testing.T) *classfile.Program {
	t.Helper()
	b := classfile.NewBuilder("t")
	b.AddClass(classfile.ClassSpec{Name: "Object", System: true, FileBytes: 1000})
	b.AddClass(classfile.ClassSpec{Name: "Sys", Super: "Object", System: true, FileBytes: 2000})
	b.AddClass(classfile.ClassSpec{Name: "A", Super: "Object", FileBytes: 3000})
	bID := b.AddClass(classfile.ClassSpec{Name: "B", Super: "A", FileBytes: 4000})
	m := b.AddMethod(classfile.MethodSpec{Class: bID, Name: "main", Code: []isa.Instr{{Op: isa.HALT}}})
	b.SetEntry(m)
	return b.MustBuild()
}

func TestLazyLoadingWithSuperChain(t *testing.T) {
	p := chainProgram(t)
	l := New(p, false)
	bID, _ := p.Classes[3].ID, 0
	reports, err := l.EnsureLoaded(bID)
	if err != nil {
		t.Fatal(err)
	}
	// B requires A requires Object: three loads, supers first.
	if len(reports) != 3 {
		t.Fatalf("got %d reports, want 3", len(reports))
	}
	wantOrder := []string{"Object", "A", "B"}
	for i, r := range reports {
		if p.Classes[r.Class].Name != wantOrder[i] {
			t.Fatalf("load %d = %s, want %s", i, p.Classes[r.Class].Name, wantOrder[i])
		}
		if r.Work.Instructions <= 0 || r.FileBytes <= 0 || r.MetadataBytes <= 0 {
			t.Fatalf("degenerate report %+v", r)
		}
	}
	// Idempotent.
	again, err := l.EnsureLoaded(bID)
	if err != nil || again != nil {
		t.Fatalf("reload: %v %v", again, err)
	}
	st := l.Stats()
	if st.ClassesLoaded != 3 || st.BytesLoaded != 8000 {
		t.Fatalf("stats %+v", st)
	}
}

func TestMergedSystemClassesAreFree(t *testing.T) {
	p := chainProgram(t)
	l := New(p, true) // Jikes: boot image
	if !l.Loaded(0) || !l.Loaded(1) {
		t.Fatal("system classes not preloaded")
	}
	if l.Loaded(2) {
		t.Fatal("app class preloaded")
	}
	reports, err := l.EnsureLoaded(1) // system class: no cost
	if err != nil || reports != nil {
		t.Fatalf("system load: %v %v", reports, err)
	}
	// Loading an app class does not recharge the preloaded super.
	reports, err = l.EnsureLoaded(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 || p.Classes[reports[0].Class].Name != "A" {
		t.Fatalf("loads = %+v, want just A", reports)
	}
	if got := l.LoadedCount(); got != 3 {
		t.Fatalf("loaded count %d, want 3", got)
	}
}

func TestLoadCostScalesWithFileSize(t *testing.T) {
	p := chainProgram(t)
	l := New(p, false)
	r1, _ := l.EnsureLoaded(0) // Object, 1000 B
	l2 := New(p, false)
	l2.loaded[0] = true // skip Object
	l2.loaded[2] = true // skip A
	r2, _ := l2.EnsureLoaded(3)
	small := r1[0].Work.Instructions
	big := r2[0].Work.Instructions
	if big <= small {
		t.Fatalf("4000B class (%d instr) not costlier than 1000B class (%d instr)", big, small)
	}
}

func TestInvalidClassID(t *testing.T) {
	p := chainProgram(t)
	l := New(p, false)
	if _, err := l.EnsureLoaded(99); err == nil {
		t.Fatal("invalid class id accepted")
	}
}
