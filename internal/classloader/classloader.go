// Package classloader implements dynamic lazy class loading, the "CL"
// component of the paper's decomposition. A class is loaded on first
// reference: its file is read, parsed, and verified; its superclass chain
// is resolved (loading recursively); and its runtime metadata is built.
//
// The package models the one structural difference the paper identifies as
// decisive for embedded energy (Section VI-E): Jikes merges system classes
// into the VM boot image, so only application classes pay load cost at run
// time, while Kaffe loads every system class lazily through the same path —
// which is why the class loader becomes the single largest energy consumer
// (18% average) for Kaffe on the PXA255.
package classloader

import (
	"fmt"

	"jvmpower/internal/classfile"
	"jvmpower/internal/units"
	"jvmpower/internal/work"
)

// Cost model for one class load. Loading walks the class file twice (parse
// then verify) and writes runtime metadata roughly a third the file's size.
// Class files and fresh metadata are cold — load work has mediocre data
// locality and a high instruction-fetch miss rate (the loader's code paths
// are themselves cold), producing the low-IPC, stall-heavy loader behavior
// the paper measures on the PXA255.
const (
	instrPerFileByte = 34
	parseReadFactor  = 0.26 // data reads per instruction
	metaWriteFactor  = 0.09 // data writes per instruction
	resolveInstr     = 900  // per resolved superclass/interface link

	loadLocality = 0.58
	// ICacheMissPerKInst for load slices.
	LoadICacheMissPerKInst = 7.0
)

// Report describes one class load performed.
type Report struct {
	Class     classfile.ClassID
	FileBytes units.ByteSize
	Work      work.Work
	// MetadataBytes is the runtime metadata footprint the VM should
	// allocate on the class's behalf.
	MetadataBytes units.ByteSize
}

// Stats accumulates loader activity.
type Stats struct {
	ClassesLoaded int64
	BytesLoaded   units.ByteSize
	TotalWork     work.Work
}

// Loader performs lazy class loading for one program instance.
type Loader struct {
	prog   *classfile.Program
	loaded []bool
	// mergedSystem marks system classes as preloaded (Jikes boot image):
	// loading them is free at run time.
	mergedSystem bool
	stats        Stats
}

// New returns a loader for prog. mergedSystem selects the Jikes behavior
// (system classes preloaded into the boot image).
func New(prog *classfile.Program, mergedSystem bool) *Loader {
	l := &Loader{
		prog:         prog,
		loaded:       make([]bool, len(prog.Classes)),
		mergedSystem: mergedSystem,
	}
	if mergedSystem {
		for i, c := range prog.Classes {
			if c.System {
				l.loaded[i] = true
			}
		}
	}
	return l
}

// Loaded reports whether a class has been loaded.
func (l *Loader) Loaded(id classfile.ClassID) bool {
	return l.loaded[id]
}

// LoadedCount reports how many classes are currently loaded (including
// boot-image classes for merged-system loaders).
func (l *Loader) LoadedCount() int {
	n := 0
	for _, ok := range l.loaded {
		if ok {
			n++
		}
	}
	return n
}

// Stats returns cumulative loader statistics.
func (l *Loader) Stats() Stats { return l.stats }

// Clone returns an independent deep copy of the loader (loaded set and
// stats; the program is shared, immutable input). Used by sweep-prefix
// snapshots.
func (l *Loader) Clone() *Loader {
	return &Loader{
		prog:         l.prog,
		loaded:       append([]bool(nil), l.loaded...),
		mergedSystem: l.mergedSystem,
		stats:        l.stats,
	}
}

// EnsureLoaded loads a class if needed, resolving its superclass chain
// first, and returns one Report per class actually loaded (superclasses
// first). It returns nil when the class is already loaded.
func (l *Loader) EnsureLoaded(id classfile.ClassID) ([]Report, error) {
	if id < 0 || int(id) >= len(l.prog.Classes) {
		return nil, fmt.Errorf("classloader: invalid class id %d", id)
	}
	if l.loaded[id] {
		return nil, nil
	}
	var reports []Report
	var visit func(classfile.ClassID) error
	seen := make(map[classfile.ClassID]bool)
	visit = func(c classfile.ClassID) error {
		if l.loaded[c] {
			return nil
		}
		if seen[c] {
			return fmt.Errorf("classloader: superclass cycle through %q", l.prog.Classes[c].Name)
		}
		seen[c] = true
		cl := l.prog.Classes[c]
		if cl.Super != classfile.NoClass {
			if err := visit(cl.Super); err != nil {
				return err
			}
		}
		reports = append(reports, l.load(c))
		return nil
	}
	if err := visit(id); err != nil {
		return nil, err
	}
	return reports, nil
}

func (l *Loader) load(id classfile.ClassID) Report {
	c := l.prog.Classes[id]
	l.loaded[id] = true

	fb := float64(c.FileBytes)
	instr := fb * instrPerFileByte
	w := work.Work{
		Instructions: int64(instr),
		// Parsing and verification re-read the file image and constant
		// pool repeatedly and write metadata; traffic scales with effort.
		Reads:    int64(instr * parseReadFactor),
		Writes:   int64(instr * metaWriteFactor),
		Locality: loadLocality,
		MLP:      1.6, // parse is sequential but verification chases
	}
	links := int64(1) // superclass
	w.Instructions += links * resolveInstr

	r := Report{
		Class:         id,
		FileBytes:     c.FileBytes,
		Work:          w,
		MetadataBytes: units.ByteSize(int64(fb) / 3),
	}
	l.stats.ClassesLoaded++
	l.stats.BytesLoaded += c.FileBytes
	l.stats.TotalWork.Add(w)
	return r
}
