#!/usr/bin/env bash
# fleet_smoke: the distributed path's end-to-end smoke. Builds the
# experiments binary, starts two loopback fleet executor nodes
# (`-serve-node 127.0.0.1:0`, scraping each resolved address from its log),
# runs the quick Figure 6 campaign once in-process and once across the
# two-node fleet, and diffs the figure output — which must be
# byte-identical (the wall-clock trailer is stripped; it is the one line
# allowed to differ). This is the shell-level twin of the in-repo
# determinism gate (TestFleetByteIdentical), exercising the real binary,
# real TCP sockets, and the real flag wiring.
set -euo pipefail

cd "$(dirname "$0")/.."
tmp="$(mktemp -d)"
pids=()
cleanup() {
    for pid in "${pids[@]:-}"; do
        kill "$pid" 2>/dev/null || true
    done
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/experiments" ./cmd/experiments

# scrape_addr polls a node's log for the resolved listen address.
scrape_addr() {
    local log="$1" addr
    for _ in $(seq 1 100); do
        addr="$(sed -n 's/.*fleet node listening on //p' "$log" | head -n 1)"
        if [ -n "$addr" ]; then
            echo "$addr"
            return 0
        fi
        sleep 0.1
    done
    echo "fleet_smoke: node never reported its address ($log)" >&2
    return 1
}

"$tmp/experiments" -serve-node 127.0.0.1:0 2>"$tmp/node-a.log" &
pids+=($!)
"$tmp/experiments" -serve-node 127.0.0.1:0 2>"$tmp/node-b.log" &
pids+=($!)
addr_a="$(scrape_addr "$tmp/node-a.log")"
addr_b="$(scrape_addr "$tmp/node-b.log")"

strip_timing() { grep -v '^(completed in ' "$1" > "$2"; }

"$tmp/experiments" -fig fig6 -quick > "$tmp/inproc-raw.txt"
"$tmp/experiments" -fig fig6 -quick -nodes "$addr_a,$addr_b" > "$tmp/fleet-raw.txt" 2>"$tmp/fleet.log"
strip_timing "$tmp/inproc-raw.txt" "$tmp/inproc.txt"
strip_timing "$tmp/fleet-raw.txt" "$tmp/fleet.txt"

if ! diff -u "$tmp/inproc.txt" "$tmp/fleet.txt"; then
    echo "fleet_smoke: FAIL — fleet output differs from the in-process run" >&2
    exit 1
fi
echo "fleet_smoke: OK — 2-node campaign byte-identical to the in-process run"
