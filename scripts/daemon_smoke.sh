#!/usr/bin/env bash
# daemon_smoke: the characterization service's end-to-end smoke. Builds
# the experiments binary, starts it as `-daemon` with a job log and point
# cache, and drives the real HTTP API with curl:
#
#   1. submit a quick Figure 6 campaign, poll it to completion, and
#      byte-diff the /result body against the one-shot CLI output at the
#      same seed (the wall-clock trailer the CLI appends is stripped; the
#      daemon result has none);
#   2. SIGKILL the daemon mid-campaign (a second submitted job), restart
#      it on the same journal and cache, and verify recovery requeues and
#      finishes the job byte-identically;
#   3. SIGTERM the idle daemon and assert the clean-drain exit: code 0
#      and the "drained cleanly" log line.
#
# This is the shell-level twin of the in-repo gates (TestDaemonJobLifecycle,
# TestDaemonCrashRecovery), exercising the real binary, real signals, and
# the real flag wiring.
set -euo pipefail

cd "$(dirname "$0")/.."
tmp="$(mktemp -d)"
pids=()
cleanup() {
    for pid in "${pids[@]:-}"; do
        kill -9 "$pid" 2>/dev/null || true
    done
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/experiments" ./cmd/experiments

addr="127.0.0.1:9338"
base="http://$addr"

# start_daemon launches the service and records its PID in daemon_pid.
# (Not a command substitution: the inherited stdout pipe would make $(...)
# block until the daemon exits.)
start_daemon() {
    local log="$1"
    "$tmp/experiments" -daemon -http "$addr" \
        -cache "$tmp/points" -journal "$tmp/jobs.jsonl" \
        -max-inflight 1 -queue-depth 4 -quota-rate 0 \
        >/dev/null 2>"$log" &
    daemon_pid=$!
    pids+=("$daemon_pid")
}

wait_ready() {
    for _ in $(seq 1 100); do
        if curl -sf "$base/healthz" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    echo "daemon_smoke: daemon never became ready" >&2
    return 1
}

# poll_state polls a job until it reaches a terminal state, echoing it.
poll_state() {
    local id="$1" state
    for _ in $(seq 1 600); do
        state="$(curl -sf "$base/jobs/$id" | sed -n 's/.*"state":"\([a-z]*\)".*/\1/p')"
        case "$state" in
            completed|failed|cancelled|expired) echo "$state"; return 0 ;;
        esac
        sleep 0.1
    done
    echo "daemon_smoke: job $id never finished (last state: $state)" >&2
    return 1
}

# --- 1. submit over HTTP, byte-diff against the one-shot CLI -----------

start_daemon "$tmp/daemon-1.log"
wait_ready

job1="$(curl -sf -X POST "$base/jobs" -H 'X-Client: smoke' \
    -d '{"figures":["fig6"],"seed":7,"quick":true}' \
    | sed -n 's/.*"id":"\([a-z0-9-]*\)".*/\1/p')"
[ -n "$job1" ] || { echo "daemon_smoke: submission returned no job ID" >&2; exit 1; }

state="$(poll_state "$job1")"
[ "$state" = completed ] || { echo "daemon_smoke: job $job1 ended $state" >&2; exit 1; }
curl -sf "$base/jobs/$job1/result" > "$tmp/daemon-result.txt"

# strip_cli drops the CLI's wall-clock trailer (a blank line plus
# "(completed in ...)"); the daemon result carries figure output only.
strip_cli() {
    printf '%s\n' "$(grep -v '^(completed in ' "$1")" > "$2"
}

"$tmp/experiments" -fig fig6 -quick -seed 7 > "$tmp/cli-raw.txt"
strip_cli "$tmp/cli-raw.txt" "$tmp/cli-result.txt"

if ! diff -u "$tmp/cli-result.txt" "$tmp/daemon-result.txt"; then
    echo "daemon_smoke: FAIL — daemon result differs from the one-shot CLI run" >&2
    exit 1
fi
echo "daemon_smoke: job $job1 byte-identical to the one-shot CLI"

# --- 2. SIGKILL mid-campaign, restart, recover ------------------------

job2="$(curl -sf -X POST "$base/jobs" -H 'X-Client: smoke' \
    -d '{"figures":["fig6"],"seed":11,"quick":true}' \
    | sed -n 's/.*"id":"\([a-z0-9-]*\)".*/\1/p')"
[ -n "$job2" ] || { echo "daemon_smoke: second submission returned no job ID" >&2; exit 1; }

# Let the campaign journal at least one point, then kill without mercy.
for _ in $(seq 1 300); do
    points="$(curl -sf "$base/jobs/$job2" | sed -n 's/.*"points":\([0-9]*\).*/\1/p')"
    [ "${points:-0}" -ge 1 ] && break
    sleep 0.1
done
[ "${points:-0}" -ge 1 ] || { echo "daemon_smoke: job $job2 made no progress" >&2; exit 1; }
kill -9 "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true

start_daemon "$tmp/daemon-2.log"
wait_ready
grep -q '1 job(s) recovered' "$tmp/daemon-2.log" \
    || { echo "daemon_smoke: restart did not recover the killed job" >&2; cat "$tmp/daemon-2.log" >&2; exit 1; }

state="$(poll_state "$job2")"
[ "$state" = completed ] || { echo "daemon_smoke: recovered job $job2 ended $state" >&2; exit 1; }
curl -sf "$base/jobs/$job2/result" > "$tmp/recovered-result.txt"

"$tmp/experiments" -fig fig6 -quick -seed 11 > "$tmp/cli11-raw.txt"
strip_cli "$tmp/cli11-raw.txt" "$tmp/cli11-result.txt"
if ! diff -u "$tmp/cli11-result.txt" "$tmp/recovered-result.txt"; then
    echo "daemon_smoke: FAIL — recovered result differs from the one-shot CLI run" >&2
    exit 1
fi
echo "daemon_smoke: job $job2 recovered after SIGKILL, byte-identical"

# --- 3. SIGTERM: clean drain exit -------------------------------------

kill -TERM "$daemon_pid"
rc=0
wait "$daemon_pid" || rc=$?
if [ "$rc" -ne 0 ]; then
    echo "daemon_smoke: FAIL — SIGTERM drain exited $rc, want 0" >&2
    cat "$tmp/daemon-2.log" >&2
    exit 1
fi
grep -q 'daemon drained cleanly' "$tmp/daemon-2.log" \
    || { echo "daemon_smoke: drain exit did not log clean drain" >&2; cat "$tmp/daemon-2.log" >&2; exit 1; }
pids=()
echo "daemon_smoke: OK — submit/poll byte-identical, SIGKILL recovery byte-identical, SIGTERM drained cleanly"
