#!/usr/bin/env bash
# crash_torture: the durability story's end-to-end smoke. Builds the real
# experiments binary, runs a clean quick Figure 6 campaign as the
# reference, then for three injected kill points (after the 1st record's
# group commit, mid-way through the 2nd record's bytes, after the 3rd
# record) SIGKILLs a journaled+cached campaign via JVMPOWER_CRASH_JOURNAL,
# verifies `-fsck` sees exactly the expected damage, resumes with
# `-resume`, and diffs the finished figure against the reference — which
# must be byte-identical (only the wall-clock trailer is stripped). This is
# the shell-level twin of TestKillAnywhereResumeByteIdentical, exercising
# the real binary, real flag wiring, and a real SIGKILL death.
set -euo pipefail

cd "$(dirname "$0")/.."
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/experiments" ./cmd/experiments

strip_timing() { grep -v '^(completed in ' "$1" > "$2"; }

"$tmp/experiments" -fig fig6 -quick > "$tmp/clean-raw.txt"
strip_timing "$tmp/clean-raw.txt" "$tmp/clean.txt"

fail() { echo "crash_torture: FAIL — $*" >&2; exit 1; }

for directive in after=1 mid=2 after=3; do
    dir="$tmp/$directive"
    mkdir -p "$dir"
    journal="$dir/run.jsonl"
    cache="$dir/points"

    # Phase 1: the crash. The injected SIGKILL (137) must be the exit.
    set +e
    JVMPOWER_CRASH_JOURNAL="$directive" \
        "$tmp/experiments" -fig fig6 -quick -cache "$cache" -journal "$journal" \
        > "$dir/crashed.txt" 2> "$dir/crashed.log"
    status=$?
    set -e
    if [ "$status" -ne 137 ]; then
        cat "$dir/crashed.log" >&2
        fail "$directive: crashed run exited $status, want 137 (SIGKILL)"
    fi
    [ -s "$journal" ] || fail "$directive: crashed run left no journal"

    # Phase 2: offline verification. fsck must exit 0 on a clean tail
    # (after=N) and 4 on a torn one (mid=N), never anything else.
    set +e
    "$tmp/experiments" -fsck -journal "$journal" -cache "$cache" > /dev/null 2> "$dir/fsck.log"
    fsck_status=$?
    set -e
    case "$directive" in
        mid=*)   want_fsck=4 ;;
        after=*) want_fsck=0 ;;
    esac
    if [ "$fsck_status" -ne "$want_fsck" ]; then
        cat "$dir/fsck.log" >&2
        fail "$directive: fsck exited $fsck_status, want $want_fsck"
    fi

    # Phase 3: the resume. It must finish cleanly and reproduce the
    # reference bytes exactly.
    "$tmp/experiments" -fig fig6 -quick -cache "$cache" -journal "$journal" -resume \
        > "$dir/resumed-raw.txt" 2> "$dir/resumed.log"
    strip_timing "$dir/resumed-raw.txt" "$dir/resumed.txt"
    if ! diff -u "$tmp/clean.txt" "$dir/resumed.txt"; then
        cat "$dir/resumed.log" >&2
        fail "$directive: resumed output differs from the uninterrupted run"
    fi
    echo "crash_torture: $directive OK"
done

echo "crash_torture: OK — 3 kill points survived; resumed output byte-identical"
